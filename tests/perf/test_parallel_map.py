"""Tests for the ordered process-pool map.

Worker functions must be module-level (they are pickled by reference into
the pool's call queue).
"""

from __future__ import annotations

import time

import pytest

from repro.obs import counter, get_metrics
from repro.perf import RemoteTaskError, TaskOutcome, ordered_process_map
from repro.resilience import Deadline


def _scale(payload, item):
    return payload * item


def _fail_on_three(payload, item):
    if item == 3:
        raise RuntimeError("poisoned item")
    return item


def _bump_counter(payload, item):
    counter("perf.test.bumps").inc(item)
    return item


def _sleepy(payload, item):
    time.sleep(item)
    return item


class TestOrderedProcessMap:
    def test_results_follow_input_order(self):
        items = [5, 1, 4, 2, 3]
        outcomes = list(ordered_process_map(_scale, 10, items, workers=2))
        assert [o.item for o in outcomes] == items
        assert [o.value for o in outcomes] == [50, 10, 40, 20, 30]
        assert all(o.ok for o in outcomes)

    def test_worker_error_is_data_not_poison(self):
        outcomes = list(ordered_process_map(_fail_on_three, None, [1, 3, 2], workers=2))
        by_item = {o.item: o for o in outcomes}
        assert by_item[1].ok and by_item[2].ok  # pool survives the failure
        failed = by_item[3]
        assert not failed.ok
        assert failed.error == {"type": "RuntimeError", "message": "poisoned item"}
        with pytest.raises(RemoteTaskError, match="poisoned item"):
            failed.unwrap()

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ordered_process_map(_scale, 1, [1], workers=0)

    def test_counter_deltas_merge_into_parent(self):
        before = get_metrics().counter("perf.test.bumps").value
        list(ordered_process_map(_bump_counter, None, [2, 3, 5], workers=2))
        after = get_metrics().counter("perf.test.bumps").value
        assert after - before == pytest.approx(10)

    def test_deadline_interrupts_remaining_items(self):
        deadline = Deadline.after(0.3)
        outcomes = list(
            ordered_process_map(
                _sleepy, None, [0.0, 1.0, 0.0, 0.0], workers=1, deadline=deadline
            )
        )
        assert outcomes[0].ok
        interrupted = [o.interrupted for o in outcomes]
        assert any(interrupted)
        # Once interrupted, every later outcome is interrupted too.
        first = interrupted.index(True)
        assert all(interrupted[first:])

    def test_early_abandonment_is_clean(self):
        results = ordered_process_map(_scale, 1, list(range(8)), workers=2)
        first = next(results)
        assert first == TaskOutcome(item=0, value=0)
        results.close()  # must not hang or raise
