"""Unit tests for zero-overlap pair pruning (inverted neighbor index)."""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.obs import get_metrics
from repro.perf.blocking import candidate_pairs, intersecting_pair_mask


def _random_supports(rng, n_rows: int, n_cols: int, n_paths: int):
    mats = []
    for _ in range(n_paths):
        dense = rng.random((n_rows, n_cols)) * (rng.random((n_rows, n_cols)) < 0.15)
        mats.append(sparse.csr_matrix(dense))
    return mats


def _brute_force_mask(mats, idx_a, idx_b):
    out = np.zeros(len(idx_a), dtype=bool)
    for k, (a, b) in enumerate(zip(idx_a, idx_b)):
        for m in mats:
            sa = set(m.getrow(int(a)).indices.tolist())
            sb = set(m.getrow(int(b)).indices.tolist())
            if sa & sb:
                out[k] = True
                break
    return out


def _counter(name: str) -> int:
    return int(get_metrics().snapshot()["counters"].get(name, 0))


class TestIntersectingPairMask:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(7)
        mats = _random_supports(rng, 20, 30, 3)
        idx_a, idx_b = np.triu_indices(20, k=1)
        mask = intersecting_pair_mask(mats, idx_a, idx_b)
        np.testing.assert_array_equal(mask, _brute_force_mask(mats, idx_a, idx_b))

    def test_tiny_chunk_same_answer(self):
        rng = np.random.default_rng(11)
        mats = _random_supports(rng, 12, 25, 2)
        idx_a, idx_b = np.triu_indices(12, k=1)
        whole = intersecting_pair_mask(mats, idx_a, idx_b)
        sliced = intersecting_pair_mask(mats, idx_a, idx_b, pair_chunk=3)
        np.testing.assert_array_equal(whole, sliced)

    def test_explicit_zeros_do_not_count_as_support(self):
        m = sparse.csr_matrix(  # stored zero at (0, 1), the shared column
            (np.array([1.0, 0.0, 1.0]), (np.array([0, 0, 1]), np.array([0, 1, 1]))),
            shape=(2, 2),
        )
        mask = intersecting_pair_mask([m], np.array([0]), np.array([1]))
        assert not mask[0]

    def test_counters_split_kept_and_pruned(self):
        m = sparse.csr_matrix(np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]]))
        kept0 = _counter("blocking.pairs_kept")
        pruned0 = _counter("blocking.pairs_pruned")
        mask = intersecting_pair_mask(
            [m], np.array([0, 0, 1]), np.array([1, 2, 2])
        )
        np.testing.assert_array_equal(mask, [True, False, False])
        assert _counter("blocking.pairs_kept") == kept0 + 1
        assert _counter("blocking.pairs_pruned") == pruned0 + 2


class TestCandidatePairs:
    def test_matches_mask_on_full_grid(self):
        rng = np.random.default_rng(3)
        mats = _random_supports(rng, 15, 20, 2)
        idx_a, idx_b = np.triu_indices(15, k=1)
        mask = intersecting_pair_mask(mats, idx_a, idx_b)
        expected = [
            (int(a), int(b)) for a, b, keep in zip(idx_a, idx_b, mask) if keep
        ]
        assert candidate_pairs(mats) == expected

    def test_union_across_paths(self):
        a = sparse.csr_matrix(np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]]))
        b = sparse.csr_matrix(np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 1.0]]))
        # path a joins (0,1); path b joins (1,2); nothing joins (0,2)
        assert candidate_pairs([a, b]) == [(0, 1), (1, 2)]

    def test_empty_inputs(self):
        assert candidate_pairs([]) == []
        empty = sparse.csr_matrix((4, 6))
        assert candidate_pairs([empty]) == []
