"""Worker-side tracer lifecycle in ``_run_task``.

Regression for the tracer leaking past a task that dies with something
harsher than ``Exception``: the error-as-data path catches ``Exception``
only, so a ``KeyboardInterrupt`` (pool teardown, operator abort) used to
skip the teardown and leave the tracer installed for the next task.
"""

from __future__ import annotations

import pytest

from repro.obs import tracing_enabled
from repro.perf import parallel


def _hostile(payload, item):
    raise KeyboardInterrupt


def _friendly(payload, item):
    return (payload["base"], item)


class TestRunTaskTracerTeardown:
    @pytest.fixture(autouse=True)
    def worker_state(self):
        parallel._init_worker({"base": 1}, trace=True)
        yield
        parallel._init_worker(None, trace=False)

    def test_base_exception_still_uninstalls_tracer(self):
        with pytest.raises(KeyboardInterrupt):
            parallel._run_task(_hostile, 7)
        assert not tracing_enabled()

    def test_exception_travels_as_data_and_uninstalls(self):
        def failing(payload, item):
            raise ValueError("boom")

        value, error, _deltas, seconds, _trace = parallel._run_task(
            failing, 7
        )
        assert value is None
        assert error == {"type": "ValueError", "message": "boom"}
        assert seconds >= 0.0
        assert not tracing_enabled()

    def test_normal_path_uninstalls_tracer(self):
        value, error, _deltas, _seconds, _trace = parallel._run_task(
            _friendly, 7
        )
        assert value == (1, 7)
        assert error is None
        assert not tracing_enabled()
