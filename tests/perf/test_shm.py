"""Shared-memory payload dispatch: round-trip, zero-copy, lifecycle."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from scipy import sparse

from repro.perf import (
    PickledPayload,
    SharedPayload,
    active_segments,
    ordered_process_map,
)


def _csr_payload():
    """A payload shaped like the real one: CSR matrices + dense arrays."""
    rng = np.random.default_rng(7)
    matrix = sparse.random(40, 60, density=0.2, random_state=3, format="csr")
    dense = rng.standard_normal(512)
    return {"matrix": matrix, "dense": dense, "meta": {"k": 3, "name": "x"}}


def _scale_task(payload, item):
    return float(payload["dense"][item] * payload["meta"]["k"])


def _write_task(payload, item):
    try:
        payload["dense"][0] = -1.0
    except ValueError:
        return "read-only"
    return "writable"


class TestRoundTrip:
    def test_wrap_attach_reproduces_payload(self):
        payload = _csr_payload()
        handle = SharedPayload.wrap(payload)
        try:
            out = handle.attach()
            np.testing.assert_array_equal(out["dense"], payload["dense"])
            assert (out["matrix"] != payload["matrix"]).nnz == 0
            assert out["meta"] == payload["meta"]
        finally:
            handle.release()

    def test_attached_arrays_are_read_only_views(self):
        handle = SharedPayload.wrap(_csr_payload())
        try:
            out = handle.attach()
            assert not out["dense"].flags.writeable
            with pytest.raises(ValueError):
                out["dense"][0] = 1.0
            with pytest.raises(ValueError):
                out["matrix"].data[0] = 1.0
        finally:
            handle.release()

    def test_head_is_small_next_to_the_pickled_baseline(self):
        payload = _csr_payload()
        shared = SharedPayload.wrap(payload)
        try:
            baseline = PickledPayload.wrap(payload)
            # The buffers (CSR data/indices/indptr + the dense array) live
            # in the segment, not in the head a worker deserializes.
            assert shared.shared_bytes > 4096
            assert shared.dispatch_bytes < baseline.dispatch_bytes / 2
        finally:
            shared.release()

    def test_pickled_baseline_round_trips(self):
        payload = _csr_payload()
        handle = PickledPayload.wrap(payload)
        out = handle.attach()
        np.testing.assert_array_equal(out["dense"], payload["dense"])
        handle.release()  # no-op, must not raise


class TestLifecycle:
    def test_release_unlinks_exactly_once_and_is_idempotent(self):
        handle = SharedPayload.wrap(_csr_payload())
        name = handle.segment_name
        assert name in active_segments()
        handle.release()
        assert name not in active_segments()
        handle.release()  # second call is a no-op
        assert active_segments() == []

    def test_release_before_attach_is_clean(self):
        handle = SharedPayload.wrap(_csr_payload())
        handle.release()
        assert active_segments() == []

    def test_nonowner_copy_attaches_but_never_unlinks(self):
        handle = SharedPayload.wrap(_csr_payload())
        try:
            clone = pickle.loads(pickle.dumps(handle))
            out = clone.attach()
            np.testing.assert_array_equal(out["dense"], handle.attach()["dense"])
            clone.release()
            # Only the creator unlinks: the segment must still be alive.
            assert handle.segment_name in active_segments()
        finally:
            handle.release()
        assert active_segments() == []

    def test_empty_buffer_payload_still_gets_lifecycle(self):
        # Dict/list payloads expose no protocol-5 buffers; the segment
        # (floored at one byte) still exists so crash/leak semantics hold.
        handle = SharedPayload.wrap({"a": [1, 2, 3]})
        assert handle.segment_name in active_segments()
        assert handle.attach() == {"a": [1, 2, 3]}
        handle.release()
        assert active_segments() == []


class TestThroughTheMap:
    def test_pool_workers_attach_and_results_match_inline(self):
        payload = _csr_payload()
        items = list(range(32))
        expected = [
            t.value
            for t in ordered_process_map(
                _scale_task, payload, items, workers=1, inline=True
            )
        ]
        out = list(
            ordered_process_map(
                _scale_task, SharedPayload.wrap(payload), items, workers=3,
                chunk_size=4,
            )
        )
        assert [t.value for t in out] == expected
        assert active_segments() == []

    def test_worker_side_payload_is_read_only(self):
        out = list(
            ordered_process_map(
                _write_task, SharedPayload.wrap(_csr_payload()), [0], workers=2
            )
        )
        assert out[0].value == "read-only"
        assert active_segments() == []

    def test_abandoned_iterator_releases_the_segment(self):
        handle = SharedPayload.wrap(_csr_payload())
        it = ordered_process_map(
            _scale_task, handle, list(range(16)), workers=2, chunk_size=2
        )
        next(it)
        it.close()
        assert active_segments() == []
