"""Unit tests for the compiled CSR transitions behind batched propagation."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.obs import get_metrics
from repro.perf.transitions import Transition, TransitionCache, build_transition

#: partner lists of a toy 6-row -> 5-row step
FANOUTS = {
    0: (1, 3),
    1: (0,),
    2: (),
    3: (0, 2, 4),
    4: (4,),
    5: (1,),
}
SHAPE = (6, 5)


def fanout(row: int):
    return FANOUTS[row]


def _counter(name: str) -> int:
    return int(get_metrics().snapshot()["counters"].get(name, 0))


class TestBuildTransition:
    def test_rows_are_normalized_mass_splits(self):
        t = build_transition(np.array([0, 3]), fanout, SHAPE)
        dense = t.matrix.toarray()
        np.testing.assert_allclose(dense[0], [0, 0.5, 0, 0.5, 0])
        np.testing.assert_allclose(dense[3], [1 / 3, 0, 1 / 3, 0, 1 / 3])
        # rows never asked for stay empty
        assert dense[1].sum() == 0 and dense[5].sum() == 0

    def test_degrees_and_covered_bookkeeping(self):
        t = build_transition(np.array([0, 2, 3]), fanout, SHAPE)
        np.testing.assert_array_equal(t.degrees, [2, 0, 0, 3, 0, 0])
        np.testing.assert_array_equal(
            t.covered, [True, False, True, True, False, False]
        )
        assert t.covers(np.array([0, 2]))
        assert not t.covers(np.array([0, 1]))
        assert t.covers(np.empty(0, dtype=np.int64))

    def test_duplicate_rows_compiled_once(self):
        t = build_transition(np.array([1, 1, 1]), fanout, SHAPE)
        np.testing.assert_allclose(t.matrix.toarray()[1], [1, 0, 0, 0, 0])
        assert t.matrix.nnz == 1

    def test_empty_row_set(self):
        t = build_transition(np.empty(0, dtype=np.int64), fanout, SHAPE)
        assert t.matrix.nnz == 0
        assert not t.covered.any()

    def test_matches_scalar_mass_split(self):
        # pushing a mass vector through the matrix == the scalar split
        t = build_transition(np.arange(6), fanout, SHAPE)
        mass = sparse.csr_matrix(
            (np.array([1.0, 0.5]), (np.array([0, 0]), np.array([0, 3]))),
            shape=(1, 6),
        )
        out = (mass @ t.matrix).toarray().ravel()
        # row 0 splits 1.0 over {1, 3}; row 3 splits 0.5 over {0, 2, 4}
        np.testing.assert_allclose(out, [0.5 / 3, 0.5, 0.5 / 3, 0.5, 0.5 / 3])


class TestTransitionCache:
    def test_hit_returns_same_entry(self):
        cache = TransitionCache()
        first = cache.get("step", np.array([0, 3]), SHAPE, fanout)
        reused_before = _counter("perf.transitions.reused")
        second = cache.get("step", np.array([3]), SHAPE, fanout)
        assert second is first
        assert _counter("perf.transitions.reused") == reused_before + 1

    def test_extension_only_compiles_fresh_rows(self):
        cache = TransitionCache()
        calls: list[int] = []

        def tracking(row: int):
            calls.append(row)
            return FANOUTS[row]

        cache.get("step", np.array([0, 3]), SHAPE, tracking)
        extended = cache.get("step", np.array([0, 3, 4, 5]), SHAPE, tracking)
        assert calls == [0, 3, 4, 5]  # 0 and 3 never re-fetched
        assert extended.covers(np.array([0, 3, 4, 5]))
        full = build_transition(np.array([0, 3, 4, 5]), fanout, SHAPE)
        np.testing.assert_array_equal(
            extended.matrix.toarray(), full.matrix.toarray()
        )
        np.testing.assert_array_equal(extended.degrees, full.degrees)

    def test_distinct_keys_are_independent(self):
        cache = TransitionCache()
        a = cache.get("a", np.array([0]), SHAPE, fanout)
        b = cache.get("b", np.array([3]), SHAPE, fanout)
        assert len(cache) == 2
        assert a.covered[0] and not a.covered[3]
        assert b.covered[3] and not b.covered[0]
