"""Shard planning: static parity, LPT balance, byte-identical map results."""

from __future__ import annotations

import pytest

from repro.perf import ordered_process_map, plan_shards
from repro.perf.sharding import name_cost


def _square(payload, item):
    return item * item


class TestStaticPlan:
    def test_matches_legacy_consecutive_chunks(self):
        assert plan_shards(7, chunk_size=3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert plan_shards(4, chunk_size=1) == [[0], [1], [2], [3]]
        assert plan_shards(0, chunk_size=5) == []

    def test_cost_strategy_without_costs_degrades_to_static(self):
        assert plan_shards(5, chunk_size=2, strategy="cost") == [
            [0, 1], [2, 3], [4],
        ]


class TestCostPlan:
    def test_partitions_every_item_exactly_once(self):
        costs = [float(i % 7 + 1) for i in range(23)]
        plan = plan_shards(23, chunk_size=4, strategy="cost", costs=costs)
        flat = sorted(pos for shard in plan for pos in shard)
        assert flat == list(range(23))
        assert all(len(shard) <= 4 for shard in plan)

    def test_items_stay_in_input_order_inside_a_shard(self):
        costs = [9.0, 1.0, 8.0, 2.0, 7.0, 3.0]
        plan = plan_shards(6, chunk_size=3, strategy="cost", costs=costs)
        for shard in plan:
            assert shard == sorted(shard)

    def test_dispatch_order_is_heaviest_first(self):
        costs = [1.0, 1.0, 1.0, 100.0, 1.0, 1.0]
        plan = plan_shards(6, chunk_size=2, strategy="cost", costs=costs)
        totals = [sum(costs[pos] for pos in shard) for shard in plan]
        assert totals == sorted(totals, reverse=True)
        # The giant item leads the very first shard dispatched.
        assert 3 in plan[0]

    def test_lpt_balances_skewed_costs(self):
        # One heavy item per shard beats consecutive chunking, which
        # would stack the heavy head items into the same shard.
        costs = [100.0, 90.0, 80.0, 1.0, 1.0, 1.0]
        plan = plan_shards(6, chunk_size=2, strategy="cost", costs=costs)
        totals = [sum(costs[pos] for pos in shard) for shard in plan]
        assert max(totals) <= 101.0

    def test_validation(self):
        with pytest.raises(ValueError, match="strategy"):
            plan_shards(3, strategy="greedy")
        with pytest.raises(ValueError, match="chunk_size"):
            plan_shards(3, chunk_size=0)
        with pytest.raises(ValueError, match="one entry per item"):
            plan_shards(3, strategy="cost", costs=[1.0])


class TestNameCost:
    def test_quadratic_in_refs(self):
        assert name_cost(0) == 0.0
        assert name_cost(3) == 9.0
        assert name_cost(10) == 4 * name_cost(5)


class TestMapEquivalence:
    """The plan changes dispatch order only — never what is returned."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_cost_sharding_is_byte_identical_to_static(self, workers):
        items = list(range(30))
        costs = [name_cost((i * 13) % 9 + 1) for i in items]
        static = [
            (t.item, t.value)
            for t in ordered_process_map(
                _square, None, items, workers=workers, chunk_size=3
            )
        ]
        cost = [
            (t.item, t.value)
            for t in ordered_process_map(
                _square, None, items, workers=workers, chunk_size=3,
                costs=costs, shard_strategy="cost",
            )
        ]
        inline = [
            (t.item, t.value)
            for t in ordered_process_map(
                _square, None, items, workers=1, inline=True
            )
        ]
        assert static == cost == inline

    def test_costs_with_static_strategy_are_accepted_and_ignored(self):
        items = list(range(6))
        out = [
            t.value
            for t in ordered_process_map(
                _square, None, items, workers=2, chunk_size=2,
                costs=[1.0] * 6, shard_strategy="static",
            )
        ]
        assert out == [i * i for i in items]

    def test_bad_strategy_or_costs_rejected(self):
        with pytest.raises(ValueError, match="shard_strategy"):
            list(
                ordered_process_map(
                    _square, None, [1], workers=2, shard_strategy="greedy"
                )
            )
        with pytest.raises(ValueError, match="one entry per item"):
            list(
                ordered_process_map(
                    _square, None, [1, 2], workers=2, costs=[1.0],
                    shard_strategy="cost",
                )
            )
