"""Scalar vs vectorized feature backends, and memoized propagation.

Uses the hand-built mini DBLP database so expectations stay checkable:
the two backends must agree on every (pair, path) feature, and a
memo-equipped builder must produce float-identical profiles. The same
gate covers the batched propagation backend and zero-overlap pruning:
every (backend, propagation, prune) combination must agree on features,
and pruning must never change a clustering.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.features import (
    BACKENDS,
    PROPAGATION_BACKENDS,
    all_pairs,
    compute_pair_features,
)
from repro.paths import JoinPath, ProfileBuilder
from repro.paths.propagation import make_exclusions
from repro.reldb.joins import JoinStep

from tests.minidb import WW_AUTHOR_ROW, WW_REFS, build_minidb

PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
PUB_AUTH = JoinStep("Publish", "author_key", "Authors", "author_key", "n1")
PATHS = [
    JoinPath([PUB_PAP]),
    JoinPath([PUB_PAP, PUB_PAP.reverse(), PUB_AUTH]),
]


def _builder(memo_size=None):
    return ProfileBuilder(
        build_minidb(),
        PATHS,
        make_exclusions(Authors={WW_AUTHOR_ROW}),
        memo_size=memo_size,
    )


class TestBackendEquivalence:
    def test_backends_agree_on_all_pairs(self):
        pairs = all_pairs(WW_REFS)
        scalar = compute_pair_features(_builder(), pairs, backend="scalar")
        vector = compute_pair_features(_builder(), pairs, backend="vectorized")
        assert scalar.pairs == vector.pairs
        np.testing.assert_allclose(
            scalar.resemblance, vector.resemblance, rtol=0, atol=1e-12
        )
        np.testing.assert_allclose(scalar.walk, vector.walk, rtol=0, atol=1e-12)

    def test_vectorized_handles_tiny_pair_chunk(self):
        pairs = all_pairs(WW_REFS)
        whole = compute_pair_features(_builder(), pairs, backend="vectorized")
        sliced = compute_pair_features(
            _builder(), pairs, backend="vectorized", pair_chunk=1
        )
        np.testing.assert_array_equal(whole.resemblance, sliced.resemblance)
        np.testing.assert_array_equal(whole.walk, sliced.walk)

    def test_empty_pair_list(self):
        for backend in BACKENDS:
            features = compute_pair_features(_builder(), [], backend=backend)
            assert features.n_pairs == 0
            assert features.resemblance.shape == (0, len(PATHS))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            compute_pair_features(_builder(), [], backend="gpu")


class TestPropagationBackends:
    def test_batched_matches_scalar_features(self):
        pairs = all_pairs(WW_REFS)
        reference = compute_pair_features(_builder(), pairs, backend="scalar")
        for backend, prune in itertools.product(BACKENDS, (False, True)):
            got = compute_pair_features(
                _builder(), pairs, backend=backend, propagation="batched", prune=prune
            )
            assert got.pairs == reference.pairs
            np.testing.assert_allclose(
                got.resemblance, reference.resemblance, rtol=0, atol=1e-12
            )
            np.testing.assert_allclose(got.walk, reference.walk, rtol=0, atol=1e-12)

    def test_scalar_propagation_with_pruning(self):
        pairs = all_pairs(WW_REFS)
        reference = compute_pair_features(_builder(), pairs, backend="scalar")
        for backend in BACKENDS:
            got = compute_pair_features(
                _builder(), pairs, backend=backend, propagation="scalar", prune=True
            )
            np.testing.assert_allclose(
                got.resemblance, reference.resemblance, rtol=0, atol=1e-12
            )
            np.testing.assert_allclose(got.walk, reference.walk, rtol=0, atol=1e-12)

    def test_batched_with_memo_matches(self):
        pairs = all_pairs(WW_REFS)
        plain = compute_pair_features(_builder(), pairs, propagation="batched")
        memoized = compute_pair_features(
            _builder(memo_size=1024), pairs, propagation="batched"
        )
        np.testing.assert_allclose(
            plain.resemblance, memoized.resemblance, rtol=0, atol=1e-12
        )
        np.testing.assert_allclose(plain.walk, memoized.walk, rtol=0, atol=1e-12)

    def test_empty_pairs_batched(self):
        for prune in (False, True):
            features = compute_pair_features(
                _builder(), [], propagation="batched", prune=prune
            )
            assert features.n_pairs == 0

    def test_unknown_propagation_rejected(self):
        assert "batched" in PROPAGATION_BACKENDS
        with pytest.raises(ValueError, match="propagation"):
            compute_pair_features(_builder(), [], propagation="quantum")


class TestMemoizedPropagation:
    def test_profiles_identical_with_and_without_memo(self):
        plain = _builder()
        memoized = _builder(memo_size=1024)
        for row in WW_REFS:
            by_path_plain = plain.profiles_for(row)
            by_path_memo = memoized.profiles_for(row)
            for path in PATHS:
                # Float-identical, not approximately equal: the memo only
                # caches partner lists, never reorders accumulation.
                assert by_path_plain[path].weights == by_path_memo[path].weights

    def test_memo_bound_of_one_still_correct(self):
        plain = _builder()
        tiny = _builder(memo_size=1)  # constant thrash, same results
        for row in WW_REFS:
            for path in PATHS:
                assert (
                    plain.profiles_for(row)[path].weights
                    == tiny.profiles_for(row)[path].weights
                )
