import numpy as np
import pytest

from repro.cluster import (
    AgglomerativeClusterer,
    AverageLinkMeasure,
    CompleteLinkMeasure,
    SingleLinkMeasure,
)


def matrix(entries, n):
    m = np.zeros((n, n))
    for i, j, v in entries:
        m[i, j] = m[j, i] = v
    return m


# Two tight groups {0,1,2} and {3,4}, with one weak cross link (1,3).
TWO_GROUPS = matrix(
    [(0, 1, 0.9), (0, 2, 0.8), (1, 2, 0.85), (3, 4, 0.9), (1, 3, 0.2)], 5
)


class TestMeasureValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            SingleLinkMeasure(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        m = np.array([[0.0, 0.5], [0.4, 0.0]])
        with pytest.raises(ValueError):
            AverageLinkMeasure(m)


class TestSingleLink:
    def test_initial_similarity_is_pair_value(self):
        measure = SingleLinkMeasure(TWO_GROUPS)
        assert measure.similarity(0, 1) == pytest.approx(0.9)
        assert measure.similarity(0, 4) == 0.0

    def test_merge_takes_max(self):
        measure = SingleLinkMeasure(TWO_GROUPS)
        measure.merge(0, 2, 5)
        assert measure.similarity(5, 1) == pytest.approx(0.9)

    def test_chains_through_weak_link(self):
        # Single-link merges everything reachable above the threshold.
        result = AgglomerativeClusterer(min_sim=0.1).cluster(
            SingleLinkMeasure(TWO_GROUPS)
        )
        assert result.n_clusters == 1


class TestCompleteLink:
    def test_merge_takes_min(self):
        measure = CompleteLinkMeasure(TWO_GROUPS)
        measure.merge(0, 1, 5)
        assert measure.similarity(5, 2) == pytest.approx(0.8)

    def test_one_sided_linkage_becomes_zero(self):
        measure = CompleteLinkMeasure(TWO_GROUPS)
        measure.merge(1, 3, 5)  # cluster {1,3}: 0 has no link to 3
        assert measure.similarity(5, 0) == 0.0

    def test_refuses_weakly_linked_partitions(self):
        result = AgglomerativeClusterer(min_sim=0.1).cluster(
            CompleteLinkMeasure(TWO_GROUPS)
        )
        # (1,3) link is killed by the zero pairs, groups stay apart.
        clusters = {frozenset(c) for c in result.clusters}
        assert frozenset({3, 4}) in clusters

    def test_initial_similarity(self):
        measure = CompleteLinkMeasure(TWO_GROUPS)
        assert measure.similarity(3, 4) == pytest.approx(0.9)


class TestAverageLink:
    def test_merge_averages(self):
        measure = AverageLinkMeasure(TWO_GROUPS)
        measure.merge(0, 2, 5)  # cluster {0,2} vs {1}: (0.9 + 0.85) / 2
        assert measure.similarity(5, 1) == pytest.approx(0.875)

    def test_weak_link_diluted(self):
        measure = AverageLinkMeasure(TWO_GROUPS)
        measure.merge(0, 1, 5)
        measure.merge(5, 2, 6)  # {0,1,2}
        # vs {3}: only (1,3)=0.2 -> 0.2/3
        assert measure.similarity(6, 3) == pytest.approx(0.2 / 3)

    def test_clusters_two_groups_at_moderate_threshold(self):
        result = AgglomerativeClusterer(min_sim=0.3).cluster(
            AverageLinkMeasure(TWO_GROUPS)
        )
        clusters = {frozenset(c) for c in result.clusters}
        assert clusters == {frozenset({0, 1, 2}), frozenset({3, 4})}

    def test_sizes_tracked(self):
        measure = AverageLinkMeasure(TWO_GROUPS)
        measure.merge(0, 1, 5)
        assert measure.size(5) == 2
        assert measure.size(3) == 1
