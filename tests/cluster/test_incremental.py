"""Unit tests for :func:`repro.cluster.incremental.recluster_incremental`.

The contract under test is the cluster-layer piece of delta ingest's
byte-identity story: replaying the clean dendrogram prefix and resuming
the merge loop must reproduce ``clusterer.cluster(fresh_measure)``
exactly — same merges, same similarities, same flat clusters — for any
dirty set, including the degenerate ones (nothing dirty, everything
dirty, mismatched ``min_sim``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.agglomerative import AgglomerativeClusterer
from repro.cluster.composite import CompositeMeasure
from repro.cluster.incremental import recluster_incremental

MIN_SIM = 0.3


def sym(rng: np.random.Generator, n: int) -> np.ndarray:
    m = rng.random((n, n))
    m = (m + m.T) / 2.0
    np.fill_diagonal(m, 0.0)
    return m


def grown_matrices(seed: int, n_old: int, n_new: int, dirty: set[int]):
    """(old resem/walk, new resem/walk) where only dirty rows/cols moved.

    The clean block of the post-delta matrices is copied bitwise from the
    pre-delta matrices — exactly what the ingest engine's pair-matrix
    patching produces.
    """
    rng = np.random.default_rng(seed)
    r_old, w_old = sym(rng, n_old), sym(rng, n_old)
    r_new, w_new = sym(rng, n_new), sym(rng, n_new)
    clean = np.array([i for i in range(n_old) if i not in dirty])
    if len(clean):
        r_new[np.ix_(clean, clean)] = r_old[np.ix_(clean, clean)]
        w_new[np.ix_(clean, clean)] = w_old[np.ix_(clean, clean)]
    return r_old, w_old, r_new, w_new


def assert_identical(got, want):
    assert got.min_sim == want.min_sim
    assert got.dendrogram.merges == want.dendrogram.merges
    assert (
        np.asarray(got.merge_similarities).tobytes()
        == np.asarray(want.merge_similarities).tobytes()
    )
    assert sorted(sorted(c) for c in got.clusters) == sorted(
        sorted(c) for c in want.clusters
    )


class TestRecusterIncremental:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_cold_clustering(self, seed):
        dirty = {1, 4}
        r_old, w_old, r_new, w_new = grown_matrices(seed, 10, 12, dirty)
        previous = AgglomerativeClusterer(MIN_SIM).cluster(
            CompositeMeasure(r_old, w_old)
        )
        result, n_replayed = recluster_incremental(
            CompositeMeasure(r_new, w_new),
            previous,
            dirty,
            AgglomerativeClusterer(MIN_SIM),
            n_leaves_old=10,
        )
        cold = AgglomerativeClusterer(MIN_SIM).cluster(
            CompositeMeasure(r_new, w_new)
        )
        assert_identical(result, cold)
        assert 0 <= n_replayed <= len(previous.dendrogram.merges)

    def test_nothing_dirty_replays_everything(self):
        rng = np.random.default_rng(7)
        r, w = sym(rng, 8), sym(rng, 8)
        previous = AgglomerativeClusterer(MIN_SIM).cluster(CompositeMeasure(r, w))
        result, n_replayed = recluster_incremental(
            CompositeMeasure(r, w),
            previous,
            dirty_items=(),
            clusterer=AgglomerativeClusterer(MIN_SIM),
            n_leaves_old=8,
        )
        assert n_replayed == len(previous.dendrogram.merges)
        assert_identical(result, previous)

    def test_clean_prefix_is_replayed_without_heap_work(self):
        # Two tight clean pairs merge before anything involving the dirty
        # item can: both recorded merges must replay.
        r = np.zeros((5, 5))
        for a, b, s in [(0, 1, 0.95), (2, 3, 0.9), (0, 4, 0.35), (2, 4, 0.32)]:
            r[a, b] = r[b, a] = s
        w = r.copy()
        previous = AgglomerativeClusterer(MIN_SIM).cluster(CompositeMeasure(r, w))
        assert len(previous.dendrogram.merges) >= 2

        r2, w2 = r.copy(), w.copy()
        r2[0, 4] = r2[4, 0] = w2[0, 4] = w2[4, 0] = 0.4  # dirty item 4 moved
        result, n_replayed = recluster_incremental(
            CompositeMeasure(r2, w2),
            previous,
            {4},
            AgglomerativeClusterer(MIN_SIM),
            n_leaves_old=5,
        )
        assert n_replayed >= 2
        cold = AgglomerativeClusterer(MIN_SIM).cluster(CompositeMeasure(r2, w2))
        assert_identical(result, cold)

    def test_everything_dirty_replays_nothing(self):
        r_old, w_old, r_new, w_new = grown_matrices(3, 6, 6, set(range(6)))
        previous = AgglomerativeClusterer(MIN_SIM).cluster(
            CompositeMeasure(r_old, w_old)
        )
        result, n_replayed = recluster_incremental(
            CompositeMeasure(r_new, w_new),
            previous,
            set(range(6)),
            AgglomerativeClusterer(MIN_SIM),
            n_leaves_old=6,
        )
        assert n_replayed == 0
        assert_identical(
            result,
            AgglomerativeClusterer(MIN_SIM).cluster(CompositeMeasure(r_new, w_new)),
        )

    def test_min_sim_mismatch_disables_replay(self):
        # A prefix recorded at another threshold is not replayable; the
        # result must still be the cold clustering at the new threshold.
        r_old, w_old, r_new, w_new = grown_matrices(5, 8, 9, {2})
        previous = AgglomerativeClusterer(0.2).cluster(CompositeMeasure(r_old, w_old))
        result, n_replayed = recluster_incremental(
            CompositeMeasure(r_new, w_new),
            previous,
            {2},
            AgglomerativeClusterer(MIN_SIM),
            n_leaves_old=8,
        )
        assert n_replayed == 0
        assert_identical(
            result,
            AgglomerativeClusterer(MIN_SIM).cluster(CompositeMeasure(r_new, w_new)),
        )

    def test_new_items_are_implicitly_dirty(self):
        # Indices >= n_leaves_old need not appear in dirty_items.
        r_old, w_old, r_new, w_new = grown_matrices(9, 7, 10, set())
        previous = AgglomerativeClusterer(MIN_SIM).cluster(
            CompositeMeasure(r_old, w_old)
        )
        result, _ = recluster_incremental(
            CompositeMeasure(r_new, w_new),
            previous,
            dirty_items=(),
            clusterer=AgglomerativeClusterer(MIN_SIM),
            n_leaves_old=7,
        )
        assert_identical(
            result,
            AgglomerativeClusterer(MIN_SIM).cluster(CompositeMeasure(r_new, w_new)),
        )
