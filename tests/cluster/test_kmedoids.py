import numpy as np
import pytest

from repro.cluster.kmedoids import kmedoids


def block_matrix(groups, within=0.9, across=0.05):
    n = sum(groups)
    m = np.full((n, n), across)
    start = 0
    for size in groups:
        m[start : start + size, start : start + size] = within
        start += size
    np.fill_diagonal(m, 1.0)
    return m


class TestKMedoids:
    def test_recovers_block_structure(self):
        matrix = block_matrix([4, 3, 5])
        clusters = kmedoids(matrix, k=3)
        assert sorted(len(c) for c in clusters) == [3, 4, 5]
        expected = [set(range(4)), set(range(4, 7)), set(range(7, 12))]
        assert {frozenset(c) for c in clusters} == {frozenset(c) for c in expected}

    def test_k_one_merges_all(self):
        matrix = block_matrix([3, 3])
        clusters = kmedoids(matrix, k=1)
        assert clusters == [set(range(6))]

    def test_k_equals_n_splits_all(self):
        matrix = block_matrix([4])
        clusters = kmedoids(matrix, k=4)
        assert all(len(c) == 1 for c in clusters)
        assert len(clusters) == 4

    def test_returns_exactly_k_clusters(self):
        matrix = block_matrix([5, 5, 5])
        for k in (2, 3, 4):
            assert len(kmedoids(matrix, k=k)) == k

    def test_clusters_partition_items(self):
        matrix = block_matrix([3, 4])
        clusters = kmedoids(matrix, k=2)
        items = sorted(i for c in clusters for i in c)
        assert items == list(range(7))

    def test_deterministic(self):
        matrix = block_matrix([4, 4], within=0.8, across=0.2)
        assert kmedoids(matrix, k=2) == kmedoids(matrix, k=2)

    def test_validation(self):
        matrix = block_matrix([3])
        with pytest.raises(ValueError):
            kmedoids(matrix, k=0)
        with pytest.raises(ValueError):
            kmedoids(matrix, k=4)
        with pytest.raises(ValueError):
            kmedoids(np.zeros((2, 3)), k=1)

    def test_noisy_blocks_still_recovered(self):
        rng = np.random.default_rng(3)
        matrix = block_matrix([6, 6], within=0.7, across=0.1)
        noise = rng.uniform(-0.05, 0.05, matrix.shape)
        noise = (noise + noise.T) / 2
        np.fill_diagonal(noise, 0.0)
        clusters = kmedoids(np.clip(matrix + noise, 0, 1), k=2)
        assert {frozenset(c) for c in clusters} == {
            frozenset(range(6)),
            frozenset(range(6, 12)),
        }
