"""CollectiveWalkMeasure: the walk-only Fig-4 variant's cluster measure."""

import numpy as np
import pytest

from repro.cluster.composite import CollectiveWalkMeasure


def matrix(entries, n):
    m = np.zeros((n, n))
    for i, j, v in entries:
        m[i, j] = m[j, i] = v
    return m


WALK = matrix([(0, 1, 0.4), (1, 2, 0.2), (3, 4, 0.5)], 5)


class TestCollectiveWalkMeasure:
    def test_singleton_similarity_is_pair_walk(self):
        measure = CollectiveWalkMeasure(WALK)
        assert measure.similarity(0, 1) == pytest.approx(0.4)
        assert measure.similarity(0, 3) == 0.0

    def test_resemblance_term_ignored(self):
        measure = CollectiveWalkMeasure(WALK)
        # average_resemblance is zero (constructed with zeros) but
        # similarity is still positive — unlike the composite.
        assert measure.average_resemblance(0, 1) == 0.0
        assert measure.similarity(0, 1) > 0.0

    def test_collective_aggregation_after_merge(self):
        measure = CollectiveWalkMeasure(WALK)
        measure.merge(0, 1, 5)
        # {0,1} vs {2}: W = 0.2 ; (W/2 + W/1)/2
        assert measure.similarity(5, 2) == pytest.approx(0.5 * (0.2 / 2 + 0.2))

    def test_accumulates_many_weak_links(self):
        # Two groups with many weak cross links: collective walk grows with
        # the number of linkages while average-link would dilute them.
        n = 8
        weak = np.full((n, n), 0.01)
        np.fill_diagonal(weak, 0.0)
        measure = CollectiveWalkMeasure(weak)
        measure.merge(0, 1, n)
        measure.merge(n, 2, n + 1)  # {0,1,2}
        measure.merge(3, 4, n + 2)
        measure.merge(n + 2, 5, n + 3)  # {3,4,5}
        collective = measure.similarity(n + 1, n + 3)
        # 9 cross pairs x 0.01 = 0.09 total; (0.09/3 + 0.09/3)/2 = 0.03 —
        # three times the individual pair value.
        assert collective == pytest.approx(0.03)
        assert collective > 0.01

    def test_works_with_engine(self):
        from repro.cluster.agglomerative import AgglomerativeClusterer

        result = AgglomerativeClusterer(min_sim=0.1).cluster(
            CollectiveWalkMeasure(WALK)
        )
        clusters = {frozenset(c) for c in result.clusters}
        assert frozenset({3, 4}) in clusters
        assert frozenset({0, 1, 2}) in clusters
