import math

import numpy as np
import pytest

from repro.cluster import (
    AgglomerativeClusterer,
    AverageLinkMeasure,
    CompositeMeasure,
    Dendrogram,
)


def matrix(entries, n):
    m = np.zeros((n, n))
    for i, j, v in entries:
        m[i, j] = m[j, i] = v
    return m


RESEM = matrix([(0, 1, 0.8), (0, 2, 0.6), (1, 2, 0.7), (3, 4, 0.9), (2, 3, 0.1)], 5)
WALK = matrix([(0, 1, 0.4), (0, 2, 0.3), (1, 2, 0.2), (3, 4, 0.5), (2, 3, 0.05)], 5)


class TestCompositeMeasure:
    def test_singleton_similarity_is_geometric_mean(self):
        measure = CompositeMeasure(RESEM, WALK)
        assert measure.similarity(0, 1) == pytest.approx(math.sqrt(0.8 * 0.4))

    def test_zero_when_either_component_zero(self):
        measure = CompositeMeasure(RESEM, WALK)
        assert measure.similarity(0, 4) == 0.0

    def test_average_resemblance_after_merge(self):
        measure = CompositeMeasure(RESEM, WALK)
        measure.merge(0, 1, 5)
        # {0,1} vs {2}: (0.6 + 0.7) / 2
        assert measure.average_resemblance(5, 2) == pytest.approx(0.65)

    def test_collective_walk_after_merge(self):
        measure = CompositeMeasure(RESEM, WALK)
        measure.merge(0, 1, 5)
        # W = 0.3 + 0.2 ; (W/2 + W/1) / 2
        assert measure.collective_walk_probability(5, 2) == pytest.approx(
            0.5 * (0.5 / 2 + 0.5 / 1)
        )

    def test_collective_walk_rewards_many_linkages(self):
        # Average-link dilutes by |C1||C2|; collective walk divides by
        # cluster sizes only once, so many weak cross links still count.
        measure = CompositeMeasure(RESEM, WALK)
        measure.merge(0, 1, 5)
        avg_walk = (0.3 + 0.2) / 2  # what average-link would compute
        assert measure.collective_walk_probability(5, 2) > avg_walk

    def test_merge_is_equivalent_to_recomputing_sums(self):
        measure = CompositeMeasure(RESEM, WALK)
        measure.merge(0, 1, 5)
        measure.merge(5, 2, 6)
        # {0,1,2} vs {3}: resem sum = RESEM[2,3] only
        assert measure.average_resemblance(6, 3) == pytest.approx(0.1 / 3)
        assert measure.collective_walk_probability(6, 3) == pytest.approx(
            0.5 * (0.05 / 3 + 0.05 / 1)
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CompositeMeasure(RESEM, WALK[:4, :4])
        with pytest.raises(ValueError):
            CompositeMeasure(np.zeros((2, 3)), np.zeros((2, 3)))
        bad = np.array([[0.0, 0.1], [0.2, 0.0]])
        with pytest.raises(ValueError):
            CompositeMeasure(bad, bad)


class TestEngine:
    def test_min_sim_zero_still_requires_positive_similarity(self):
        result = AgglomerativeClusterer(min_sim=0.0).cluster(
            CompositeMeasure(RESEM, WALK)
        )
        clusters = {frozenset(c) for c in result.clusters}
        # (2,3) link is positive, so everything eventually chains together.
        assert frozenset({0, 1, 2, 3, 4}) in clusters

    def test_threshold_separates_groups(self):
        result = AgglomerativeClusterer(min_sim=0.2).cluster(
            CompositeMeasure(RESEM, WALK)
        )
        clusters = {frozenset(c) for c in result.clusters}
        assert clusters == {frozenset({0, 1, 2}), frozenset({3, 4})}

    def test_merge_similarities_recorded(self):
        result = AgglomerativeClusterer(min_sim=0.2).cluster(
            CompositeMeasure(RESEM, WALK)
        )
        assert len(result.merge_similarities) == result.dendrogram.n_merges
        assert all(s >= 0.2 for s in result.merge_similarities)

    def test_first_merge_is_best_pair(self):
        result = AgglomerativeClusterer(min_sim=0.0).cluster(
            CompositeMeasure(RESEM, WALK)
        )
        first = result.dendrogram.merges[0]
        assert {first.left, first.right} == {3, 4}  # sqrt(0.9*0.5) is max

    def test_labels_align_with_clusters(self):
        result = AgglomerativeClusterer(min_sim=0.2).cluster(
            CompositeMeasure(RESEM, WALK)
        )
        labels = result.labels()
        assert len(labels) == 5
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_empty_input(self):
        result = AgglomerativeClusterer(min_sim=0.5).cluster(
            CompositeMeasure(np.zeros((0, 0)), np.zeros((0, 0)))
        )
        assert result.clusters == []

    def test_single_item(self):
        result = AgglomerativeClusterer(min_sim=0.5).cluster(
            CompositeMeasure(np.zeros((1, 1)), np.zeros((1, 1)))
        )
        assert result.clusters == [{0}]

    def test_negative_min_sim_rejected(self):
        with pytest.raises(ValueError):
            AgglomerativeClusterer(min_sim=-0.1)

    def test_high_threshold_keeps_singletons(self):
        result = AgglomerativeClusterer(min_sim=10.0).cluster(
            CompositeMeasure(RESEM, WALK)
        )
        assert result.n_clusters == 5


class TestDendrogram:
    def test_cut_replays_merges(self):
        d = Dendrogram(n_leaves=4)
        d.record(0, 1, 0.9)  # -> 4
        d.record(4, 2, 0.5)  # -> 5
        d.record(5, 3, 0.1)  # -> 6
        assert d.cut(0.05) == [{0, 1, 2, 3}]
        assert d.cut(0.4) == [{0, 1, 2}, {3}]
        assert d.cut(0.95) == [{0}, {1}, {2}, {3}]

    def test_cut_k(self):
        d = Dendrogram(n_leaves=4)
        d.record(0, 1, 0.9)
        d.record(4, 2, 0.5)
        d.record(5, 3, 0.1)
        assert d.cut_k(2) == [{0, 1, 2}, {3}]
        assert d.cut_k(1) == [{0, 1, 2, 3}]
        with pytest.raises(ValueError):
            d.cut_k(0)

    def test_cut_skips_orphaned_merges(self):
        d = Dendrogram(n_leaves=3)
        d.record(0, 1, 0.2)  # below a 0.5 cut -> children stay apart
        d.record(3, 2, 0.8)  # references cluster 3 which the cut never formed
        assert d.cut(0.5) == [{0}, {1}, {2}]
