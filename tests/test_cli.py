"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cliworld")
    code = main(["generate", "--out", str(out), "--scale", "0.3", "--seed", "5"])
    assert code == 0
    return out


@pytest.fixture(scope="module")
def model_dir(world_dir, tmp_path_factory):
    out = tmp_path_factory.mktemp("models")
    code = main(
        [
            "fit",
            "--db", str(world_dir),
            "--out", str(out),
            "--positive", "150",
            "--negative", "150",
            "--svm-c", "10",
        ]
    )
    assert code == 0
    return out


class TestGenerate:
    def test_writes_database_and_truth(self, world_dir):
        assert (world_dir / "schema.json").exists()
        assert (world_dir / "Publish.csv").exists()
        assert (world_dir / "truth.json").exists()
        names = json.loads((world_dir / "ambiguous_names.json").read_text())
        assert "Wei Wang" in names

    def test_stats_runs(self, world_dir, capsys):
        assert main(["stats", "--db", str(world_dir)]) == 0
        out = capsys.readouterr().out
        assert "Publish" in out
        assert "Wei Wang" in out


class TestFit:
    def test_writes_models_and_report(self, model_dir):
        assert (model_dir / "resem_model.json").exists()
        assert (model_dir / "walk_model.json").exists()
        report = json.loads((model_dir / "fit_report.json").read_text())
        assert report["n_training_pairs"] == 300
        assert report["n_paths"] > 10


class TestResolve:
    def test_resolve_without_truth(self, world_dir, model_dir, capsys):
        code = main(
            [
                "resolve",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "'Rakesh Kumar'" in out
        assert "object 0" in out

    def test_resolve_with_truth_renders_diagram(self, world_dir, model_dir, capsys):
        code = main(
            [
                "resolve",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
                "--truth", str(world_dir / "truth.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "real entities" in out
        assert "cluster" in out

    def test_min_sim_override(self, world_dir, model_dir, capsys):
        code = main(
            [
                "resolve",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
                "--min-sim", "99.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Impossible threshold -> every reference its own cluster.
        assert "36 references -> 36 objects" in out


class TestExperiment:
    def test_distinct_table(self, world_dir, model_dir, capsys):
        code = main(
            [
                "experiment",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--truth", str(world_dir / "truth.json"),
                "--names", "Rakesh Kumar,Hui Fang",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DISTINCT accuracy" in out
        assert "average" in out

    def test_default_names_come_from_saved_world(self, world_dir, model_dir, capsys):
        code = main(
            [
                "experiment",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--truth", str(world_dir / "truth.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Wei Wang" in out


class TestExplainCommand:
    def test_explains_a_pair(self, world_dir, model_dir, capsys):
        import json

        rows = json.loads((world_dir / "truth.json").read_text())["rows_of_name"][
            "Rakesh Kumar"
        ][:2]
        code = main(
            [
                "explain",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
                "--rows", f"{rows[0]},{rows[1]}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "composite similarity" in out

    def test_bad_rows_argument(self, world_dir, model_dir, capsys):
        code = main(
            [
                "explain",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
                "--rows", "1,2,3",
            ]
        )
        assert code == 2


class TestCandidatesCommand:
    def test_prints_ranked_names(self, world_dir, capsys):
        code = main(
            ["candidates", "--db", str(world_dir), "--min-refs", "5", "--limit", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "candidate ambiguous names" in out
        assert "score" in out

    def test_no_candidates_message(self, world_dir, capsys):
        code = main(
            ["candidates", "--db", str(world_dir), "--min-score", "0.999"]
        )
        assert code == 0
        assert "no candidate" in capsys.readouterr().out


class TestCalibrateCommand:
    def test_prints_threshold_table(self, world_dir, model_dir, capsys):
        code = main(
            [
                "calibrate",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--names", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best min-sim:" in out
        assert "synthetic" in out


class TestObservabilityFlags:
    def test_trace_out_writes_valid_span_tree(self, world_dir, model_dir, tmp_path):
        from repro.obs.export import load_trace

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "resolve",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        payload = load_trace(trace_path)

        (root,) = payload["spans"]
        assert root["name"] == "resolve"
        assert root["duration_s"] > 0

        def find(node, name):
            if node["name"] == name:
                return node
            for child in node["children"]:
                found = find(child, name)
                if found is not None:
                    return found
            return None

        # The trace covers profiles -> similarity -> clustering with
        # per-stage wall times.
        for stage in ("resolve.prepare", "resolve.profiles",
                      "resolve.similarity", "resolve.cluster",
                      "cluster.agglomerative"):
            node = find(root, stage)
            assert node is not None, stage
            assert node["duration_s"] >= 0
        assert find(root, "resolve.prepare")["attrs"]["name"] == "Rakesh Kumar"

        counters = payload["metrics"]["counters"]
        for name in ("pairs.scored", "propagation.tuples_visited",
                     "cluster.merges", "paths.enumerated"):
            assert counters[name] > 0, name

    def test_tracing_disabled_after_run(self, world_dir, model_dir, tmp_path):
        from repro.obs import tracing_enabled

        code = main(
            [
                "resolve",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
                "--trace-out", str(tmp_path / "t.json"),
            ]
        )
        assert code == 0
        assert not tracing_enabled()

    def test_sample_resources_feeds_sampler_metrics_into_trace(
        self, world_dir, model_dir, tmp_path
    ):
        from repro.obs.export import load_trace

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "resolve",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
                "--trace-out", str(trace_path),
                "--sample-resources", "0.01",
            ]
        )
        assert code == 0
        metrics = load_trace(trace_path)["metrics"]
        assert metrics["counters"]["obs.sampler.ticks"] >= 1
        assert metrics["gauges"]["obs.sampler.rss_bytes"] > 0
        assert metrics["gauges"]["obs.sampler.cpu_seconds"] > 0

    def test_flags_accepted_before_subcommand(self, world_dir, capsys):
        code = main(["--log-level", "ERROR", "stats", "--db", str(world_dir)])
        assert code == 0
        assert "Publish" in capsys.readouterr().out

    def test_json_logs_flag_parses(self, world_dir, capsys):
        code = main(["stats", "--db", str(world_dir), "--json-logs"])
        assert code == 0


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestResilienceFlags:
    """--on-error / --resume / --deadline on the long-running commands."""

    def _experiment(self, world_dir, model_dir, *extra):
        return main(
            [
                "experiment",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--truth", str(world_dir / "truth.json"),
                "--names", "Rakesh Kumar,Hui Fang",
                *extra,
            ]
        )

    def test_on_error_collect_reports_poisoned_name(
        self, world_dir, model_dir, capsys
    ):
        from repro.resilience import FaultPlan, fault_plan

        with fault_plan(FaultPlan().fail_at("profile", item="Hui Fang", times=-1)):
            code = self._experiment(
                world_dir, model_dir, "--on-error", "collect"
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 error(s) collected" in out
        assert "[experiment.score] Hui Fang" in out
        assert "Rakesh Kumar" in out  # the healthy name was still scored

    def test_deadline_exit_code_and_resume(
        self, world_dir, model_dir, tmp_path, capsys
    ):
        from repro.cli import EXIT_DEADLINE

        ckpt = tmp_path / "exp.ckpt.json"
        code = self._experiment(
            world_dir, model_dir,
            "--resume", str(ckpt), "--deadline", "0.000001",
        )
        assert code == EXIT_DEADLINE
        out = capsys.readouterr().out
        assert "deadline exceeded" in out
        assert str(ckpt) in out
        assert ckpt.exists()

        code = self._experiment(world_dir, model_dir, "--resume", str(ckpt))
        assert code == 0
        out = capsys.readouterr().out
        assert "Rakesh Kumar" in out and "Hui Fang" in out

    def test_on_error_raise_is_default(self, world_dir, model_dir):
        from repro.resilience import FaultInjected, FaultPlan, fault_plan

        with fault_plan(FaultPlan().fail_at("profile", item="Hui Fang")):
            with pytest.raises(FaultInjected):
                self._experiment(world_dir, model_dir)

    def test_calibrate_accepts_resilience_flags(
        self, world_dir, model_dir, tmp_path, capsys
    ):
        ckpt = tmp_path / "cal.ckpt.json"
        code = main(
            [
                "calibrate",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--names", "3",
                "--on-error", "skip",
                "--resume", str(ckpt),
            ]
        )
        assert code == 0
        assert ckpt.exists()
        assert "best min-sim:" in capsys.readouterr().out

class TestReportCommand:
    @pytest.fixture(scope="class")
    def trace_path(self, world_dir, model_dir, tmp_path_factory):
        path = tmp_path_factory.mktemp("report") / "trace.json"
        code = main(
            [
                "resolve",
                "--db", str(world_dir),
                "--models", str(model_dir),
                "--name", "Rakesh Kumar",
                "--trace-out", str(path),
            ]
        )
        assert code == 0
        return path

    def _history(self, tmp_path, factor: float):
        """Five steady bench runs then one whose kernels slowed by factor."""
        steady = {"pair_kernels": 10.0, "propagation": 4.0}
        entries = [
            {
                "timestamp": "2026-08-07T00:00:00+00:00",
                "git_sha": "deadbeef",
                "tiny": True,
                "config": {"n_refs": 40},
                "speedups": speedups,
                "equivalent": True,
            }
            for speedups in [steady] * 5
            + [{k: v / factor for k, v in steady.items()}]
        ]
        path = tmp_path / "history.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in entries) + "\n")
        return path

    def test_no_inputs_is_usage_error(self, capsys):
        assert main(["report"]) == 2
        assert "nothing to report" in capsys.readouterr().err

    def test_trace_summary_prints_hot_spans_and_timeline(
        self, trace_path, capsys
    ):
        assert main(["report", "--trace", str(trace_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "top 5 spans by total wall time:" in out
        assert "resolve.prepare" in out
        assert "#" in out  # timeline bars

    def test_exporter_outputs(self, trace_path, tmp_path, capsys):
        from repro.obs import parse_openmetrics

        chrome = tmp_path / "chrome.json"
        om = tmp_path / "metrics.om"
        code = main(
            [
                "report",
                "--trace", str(trace_path),
                "--chrome-out", str(chrome),
                "--openmetrics-out", str(om),
            ]
        )
        assert code == 0
        doc = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        text = om.read_text()
        assert text.rstrip().endswith("# EOF")
        parsed = parse_openmetrics(text)
        assert parsed["counters"]["repro_pairs_scored"] > 0

    def test_unreadable_trace_is_exit_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["report", "--trace", str(missing)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_regress_flags_synthetic_slowdown_report_only(
        self, tmp_path, capsys
    ):
        history = self._history(tmp_path, factor=2.0)
        code = main(["report", "--regress", "--history", str(history)])
        assert code == 0  # report-only mode never gates
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "pair_kernels" in out

    def test_regress_strict_gates_on_slowdown(self, tmp_path, capsys):
        history = self._history(tmp_path, factor=2.0)
        code = main(
            ["report", "--regress", "--history", str(history), "--strict"]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_regress_strict_passes_steady_history(self, tmp_path, capsys):
        history = self._history(tmp_path, factor=1.0)
        code = main(
            ["report", "--regress", "--history", str(history), "--strict"]
        )
        assert code == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_threshold_override_waives_a_section(self, tmp_path, capsys):
        history = self._history(tmp_path, factor=2.0)
        code = main(
            [
                "report", "--regress", "--history", str(history), "--strict",
                "--threshold", "pair_kernels=0.6",
                "--threshold", "propagation=0.6",
            ]
        )
        assert code == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_bad_threshold_is_usage_error(self, tmp_path, capsys):
        history = self._history(tmp_path, factor=1.0)
        code = main(
            [
                "report", "--regress", "--history", str(history),
                "--threshold", "nonsense",
            ]
        )
        assert code == 2
        assert "SECTION=FRAC" in capsys.readouterr().err

    def test_missing_history_is_exit_2(self, tmp_path, capsys):
        code = main(
            ["report", "--regress", "--history", str(tmp_path / "no.jsonl")]
        )
        assert code == 2
        assert "cannot compare bench history" in capsys.readouterr().err
