import pytest

from repro.strings import (
    ApproximateJoin,
    levenshtein,
    normalized_levenshtein,
    qgram_cosine,
    qgram_jaccard,
    qgram_profile,
    qgram_set,
    resembling_name_groups,
)
from repro.strings.qgrams import count_filter_threshold


class TestQGrams:
    def test_profile_counts_padded_grams(self):
        profile = qgram_profile("ab", q=2)
        # padded: _ab_ -> "_a", "ab", "b_"
        assert sum(profile.values()) == 3
        assert profile["ab"] == 1

    def test_profile_repeated_grams(self):
        profile = qgram_profile("aaa", q=2)
        assert profile["aa"] == 2

    def test_case_insensitive(self):
        assert qgram_profile("Wei") == qgram_profile("wei")

    def test_q_validation(self):
        with pytest.raises(ValueError):
            qgram_profile("x", q=0)

    def test_set_vs_profile(self):
        assert qgram_set("aaa", q=2) == frozenset(qgram_profile("aaa", q=2))

    def test_jaccard_identical(self):
        assert qgram_jaccard("wei wang", "wei wang") == 1.0

    def test_jaccard_disjoint(self):
        assert qgram_jaccard("aaaa", "zzzz") == 0.0

    def test_jaccard_close_names_high(self):
        assert qgram_jaccard("wei wang", "wei wang 2") > 0.5

    def test_cosine_bounds_and_identity(self):
        assert qgram_cosine("hello", "hello") == pytest.approx(1.0)
        assert 0.0 <= qgram_cosine("hello", "help") <= 1.0

    def test_empty_strings(self):
        assert qgram_jaccard("", "") == 1.0
        assert qgram_cosine("", "") == 1.0

    def test_count_filter_threshold(self):
        # Equal strings of length 5, k=1, q=3: must share >= 5+2-3 = 4 grams.
        assert count_filter_threshold(5, 5, 1, 3) == 4
        # Can go non-positive (filter prunes nothing).
        assert count_filter_threshold(2, 2, 2, 3) <= 0


class TestLevenshtein:
    def test_classic_cases(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "abc") == 0
        assert levenshtein("abc", "acb") == 2

    def test_symmetry(self):
        assert levenshtein("wei wang", "wie wang") == levenshtein(
            "wie wang", "wei wang"
        )

    def test_banded_early_exit(self):
        assert levenshtein("aaaaaaaa", "bbbbbbbb", max_distance=2) == 3

    def test_length_gap_shortcut(self):
        assert levenshtein("a", "aaaaaa", max_distance=2) == 3

    def test_normalized(self):
        assert normalized_levenshtein("abc", "abc") == 1.0
        assert normalized_levenshtein("", "") == 1.0
        assert normalized_levenshtein("abc", "xyz") == 0.0
        assert 0.0 < normalized_levenshtein("abcd", "abce") < 1.0


class TestApproximateJoin:
    NAMES = [
        "Wei Wang", "Wei  Wang", "W. Wang", "Wei Wang", "Jiawei Han",
        "Jaiwei Han", "Philip Yu", "Completely Different",
    ]

    def test_finds_near_duplicates(self):
        matches = ApproximateJoin(max_distance=2).matches(self.NAMES)
        pairs = {(m.left, m.right) for m in matches}
        assert ("Wei  Wang", "Wei Wang") in pairs or ("Wei Wang", "Wei  Wang") in pairs
        assert any({"Jiawei Han", "Jaiwei Han"} == {m.left, m.right} for m in matches)

    def test_distances_verified(self):
        for match in ApproximateJoin(max_distance=2).matches(self.NAMES):
            assert levenshtein(match.left, match.right) == match.distance
            assert match.distance <= 2

    def test_matches_complete_vs_bruteforce(self):
        join = ApproximateJoin(max_distance=2)
        found = {
            frozenset((m.left, m.right)) for m in join.matches(self.NAMES)
        }
        unique = sorted(set(self.NAMES))
        expected = {
            frozenset((a, b))
            for i, a in enumerate(unique)
            for b in unique[i + 1 :]
            if levenshtein(a, b) <= 2
        }
        assert found == expected

    def test_groups(self):
        groups = ApproximateJoin(max_distance=2).groups(self.NAMES)
        wang_group = next(g for g in groups if "Wei Wang" in g)
        assert "Wei  Wang" in wang_group
        assert "Completely Different" not in {n for g in groups for n in g}

    def test_no_matches(self):
        assert ApproximateJoin(max_distance=1).groups(["abcdef", "uvwxyz"]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproximateJoin(max_distance=0)


class TestResemblingNameGroups:
    def test_on_database(self):
        from repro.data.dblp_schema import new_dblp_database

        db = new_dblp_database()
        db.insert_many(
            "Authors",
            [
                (0, "Wei Wang"),
                (1, "Wei Wang 2"),
                (2, "Jiawei Han"),
                (3, "Unrelated Person"),
            ],
        )
        groups = resembling_name_groups(db, max_distance=2)
        assert groups == [{"Wei Wang", "Wei Wang 2"}]

    def test_empty_table(self):
        from repro.data.dblp_schema import new_dblp_database

        assert resembling_name_groups(new_dblp_database()) == []
