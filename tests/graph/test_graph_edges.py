"""Edge cases for the graph views."""

import networkx as nx
import pytest

from repro.graph import (
    connected_component_clusters,
    similarity_histogram,
)


class TestConnectedComponents:
    def test_empty_graph(self):
        graph = nx.Graph()
        assert connected_component_clusters(graph, 0.1) == []

    def test_isolated_nodes_become_singletons(self):
        graph = nx.Graph()
        graph.add_nodes_from([1, 2, 3])
        clusters = connected_component_clusters(graph, 0.1)
        assert clusters == [{1}, {2}, {3}]

    def test_threshold_filters_edges(self):
        graph = nx.Graph()
        graph.add_edge(1, 2, weight=0.5)
        graph.add_edge(2, 3, weight=0.05)
        assert connected_component_clusters(graph, 0.1) == [{1, 2}, {3}]
        assert connected_component_clusters(graph, 0.01) == [{1, 2, 3}]

    def test_missing_weight_treated_as_zero(self):
        graph = nx.Graph()
        graph.add_edge(1, 2)  # no weight attribute
        assert connected_component_clusters(graph, 0.1) == [{1}, {2}]
        assert connected_component_clusters(graph, 0.0) == [{1, 2}]

    def test_ordering_by_size_then_min(self):
        graph = nx.Graph()
        graph.add_edge(5, 6, weight=1.0)
        graph.add_edge(1, 2, weight=1.0)
        graph.add_edge(2, 3, weight=1.0)
        clusters = connected_component_clusters(graph, 0.5)
        assert clusters == [{1, 2, 3}, {5, 6}]


class TestSimilarityHistogram:
    def test_empty_graph(self):
        assert similarity_histogram(nx.Graph()) == []

    def test_bins_cover_range(self):
        graph = nx.Graph()
        for i, w in enumerate((0.1, 0.2, 0.9)):
            graph.add_edge(i, i + 100, weight=w)
        hist = similarity_histogram(graph, bins=4)
        assert len(hist) == 4
        assert hist[0][0] == pytest.approx(0.1)
        assert hist[-1][1] == pytest.approx(0.9)
        assert sum(c for _, _, c in hist) == 3
