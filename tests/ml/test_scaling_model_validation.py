import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import (
    LinearSVM,
    PathWeightModel,
    StandardScaler,
    classification_report,
    cross_validate,
)
from repro.ml.validation import kfold_indices
from repro.paths import JoinPath
from repro.reldb.joins import JoinStep

PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
PATHS = [JoinPath([PUB_PAP]), JoinPath([PUB_PAP, PUB_PAP.reverse()])]


class TestStandardScaler:
    def test_transform_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_passthrough(self):
        X = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        scaler = StandardScaler().fit(X)
        Z = scaler.transform(X)
        assert np.allclose(Z[:, 1], 0.0)  # mean removed, scale 1

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])
        with pytest.raises(NotFittedError):
            StandardScaler().raw_linear_model(np.array([1.0]), 0.0)

    def test_raw_linear_model_equivalence(self):
        rng = np.random.default_rng(1)
        X = rng.normal(loc=2.0, scale=4.0, size=(50, 4))
        scaler = StandardScaler().fit(X)
        w_scaled = rng.normal(size=4)
        b_scaled = 0.7
        w_raw, b_raw = scaler.raw_linear_model(w_scaled, b_scaled)
        scaled_scores = scaler.transform(X) @ w_scaled + b_scaled
        raw_scores = X @ w_raw + b_raw
        assert np.allclose(scaled_scores, raw_scores)


class TestPathWeightModel:
    def make_model(self):
        return PathWeightModel(
            measure="resemblance",
            signatures=[p.signature() for p in PATHS],
            weights=[0.8, -0.1],
            bias=0.2,
            metadata={"n_train": 10},
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PathWeightModel("walk", ["a", "b"], [1.0])

    def test_combiner_clamps_negative(self):
        model = self.make_model()
        assert model.combiner().weights == [0.8, 0.0]
        assert model.combiner(clamp_negative=False).weights == [0.8, -0.1]

    def test_decision_value(self):
        model = self.make_model()
        assert model.decision_value([1.0, 1.0]) == pytest.approx(0.9)

    def test_align_to_reorders_and_fills_zero(self):
        model = self.make_model()
        reordered = model.align_to(list(reversed(PATHS)))
        assert reordered.weights == [-0.1, 0.8]
        extra = JoinPath([JoinStep("Publish", "author_key", "Authors", "author_key", "n1")])
        extended = model.align_to(PATHS + [extra])
        assert extended.weights == [0.8, -0.1, 0.0]

    def test_top_paths(self):
        model = self.make_model()
        top = model.top_paths(1)
        assert top == [(PATHS[0].signature(), 0.8)]

    def test_round_trip_json(self, tmp_path):
        model = self.make_model()
        path = tmp_path / "model.json"
        model.save(path)
        loaded = PathWeightModel.load(path)
        assert loaded.to_dict() == model.to_dict()


class TestValidation:
    def test_classification_report_values(self):
        y_true = [1, 1, -1, -1, 1]
        y_pred = [1, -1, -1, 1, 1]
        report = classification_report(y_true, y_pred)
        assert report.accuracy == pytest.approx(0.6)
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(2 / 3)
        assert report.f1 == pytest.approx(2 / 3)
        assert report.n == 5

    def test_classification_report_degenerate(self):
        report = classification_report([-1, -1], [-1, -1])
        assert report.accuracy == 1.0
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_report_shape_mismatch(self):
        with pytest.raises(ValueError):
            classification_report([1], [1, -1])

    def test_kfold_partitions_everything_once(self):
        folds = kfold_indices(23, 5, seed=1)
        all_test = sorted(idx for _, test in folds for idx in test)
        assert all_test == list(range(23))
        for train, test in folds:
            assert not set(train) & set(test)
            assert len(train) + len(test) == 23

    def test_kfold_validation_args(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)
        with pytest.raises(ValueError):
            kfold_indices(3, 5)

    def test_cross_validate_on_separable_problem(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(2, 0.3, (30, 2)), rng.normal(-2, 0.3, (30, 2))]
        )
        y = np.array([1.0] * 30 + [-1.0] * 30)
        result = cross_validate(lambda: LinearSVM(C=1.0), X, y, k=5)
        assert result["accuracy_mean"] > 0.95
        assert result["folds"] == 5
