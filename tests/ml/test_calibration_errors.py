"""Error paths and determinism of the calibration module."""

import pytest

from repro.errors import NotFittedError, TrainingError
from repro.ml.calibration import calibrate_min_sim, make_synthetic_names


class TestCalibrationErrors:
    def test_unfitted_pipeline_rejected(self):
        from repro import Distinct, DistinctConfig

        with pytest.raises(NotFittedError):
            make_synthetic_names(Distinct(DistinctConfig()))

    def test_too_many_members_rejected(self, fitted):
        with pytest.raises(TrainingError):
            make_synthetic_names(fitted, n_names=1, members=10_000)

    def test_synthetic_names_deterministic(self, fitted):
        a = make_synthetic_names(fitted, n_names=3, members=2, seed=4)
        b = make_synthetic_names(fitted, n_names=3, members=2, seed=4)
        assert [s.member_names for s in a] == [s.member_names for s in b]
        assert [s.rows for s in a] == [s.rows for s in b]

    def test_different_seed_different_pools(self, fitted):
        a = make_synthetic_names(fitted, n_names=3, members=2, seed=1)
        b = make_synthetic_names(fitted, n_names=3, members=2, seed=2)
        assert [s.member_names for s in a] != [s.member_names for s in b]

    def test_custom_grid_respected(self, fitted):
        result = calibrate_min_sim(
            fitted, grid=(0.004, 0.02), n_names=3, members=2, seed=6
        )
        assert set(result.f1_by_min_sim) == {0.004, 0.02}
        assert result.best_min_sim in (0.004, 0.02)
        assert result.n_synthetic_names == 3
