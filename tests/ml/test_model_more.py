"""Additional PathWeightModel and TrainingSet coverage."""

import pytest

from repro.ml.model import PathWeightModel
from repro.ml.trainingset import TrainingPair, TrainingSet


class TestPathWeightModelMore:
    def test_align_to_empty_paths(self):
        model = PathWeightModel("resemblance", ["a"], [1.0])
        aligned = model.align_to([])
        assert aligned.weights == []
        assert aligned.signatures == []

    def test_align_preserves_bias_and_metadata(self):
        model = PathWeightModel(
            "walk", ["a", "b"], [1.0, 2.0], bias=-0.3, metadata={"C": 10.0}
        )
        from repro.paths import JoinPath
        from repro.reldb.joins import JoinStep

        path = JoinPath([JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")])
        aligned = model.align_to([path])
        assert aligned.bias == -0.3
        assert aligned.metadata == {"C": 10.0}

    def test_top_paths_more_than_available(self):
        model = PathWeightModel("resemblance", ["a", "b"], [0.1, 0.9])
        top = model.top_paths(10)
        assert len(top) == 2
        assert top[0] == ("b", 0.9)

    def test_decision_value_uses_signed_weights_and_bias(self):
        model = PathWeightModel("walk", ["a", "b"], [1.0, -2.0], bias=0.5)
        assert model.decision_value([1.0, 1.0]) == pytest.approx(-0.5)

    def test_from_dict_defaults(self):
        model = PathWeightModel.from_dict(
            {"measure": "walk", "signatures": ["a"], "weights": [1.5]}
        )
        assert model.bias == 0.0
        assert model.metadata == {}


class TestTrainingSetAccessors:
    def make_set(self):
        pairs = [
            TrainingPair(0, 1, "A B", "A B", 1),
            TrainingPair(2, 3, "C D", "E F", -1),
            TrainingPair(4, 5, "A B", "A B", 1),
        ]
        return TrainingSet(pairs=pairs, rare_names=["A B", "C D", "E F"])

    def test_counts(self):
        ts = self.make_set()
        assert ts.n_positive == 2
        assert ts.n_negative == 1

    def test_labels_order(self):
        assert self.make_set().labels() == [1, -1, 1]

    def test_names_used(self):
        assert self.make_set().names_used() == {"A B", "C D", "E F"}
