import pytest

from repro.errors import TrainingError
from repro.ml.trainingset import TrainingPair, build_training_set
from repro.reldb import Attribute, Database, ForeignKey, RelationSchema, Schema


class TestTrainingPair:
    def test_label_validation(self):
        with pytest.raises(ValueError):
            TrainingPair(0, 1, "A B", "A B", label=0)


class TestBuildTrainingSet:
    def test_on_small_world(self, small_db):
        db, _ = small_db
        ts = build_training_set(db, n_positive=200, n_negative=200, seed=3)
        assert ts.n_positive == 200
        assert ts.n_negative == 200
        assert len(ts.rare_names) >= 10

    def test_positive_pairs_share_name_negative_do_not(self, small_db):
        db, _ = small_db
        ts = build_training_set(db, n_positive=100, n_negative=100)
        for pair in ts.pairs:
            if pair.label == 1:
                assert pair.name_a == pair.name_b
            else:
                assert pair.name_a != pair.name_b

    def test_common_token_names_never_used(self, small_db):
        # "Wei" and "Wang" are frequent tokens even in the small world, so
        # the rarity filter must exclude "Wei Wang" from training. (Names
        # like "Jim Smith" *can* slip in when the world is small enough that
        # their tokens become rare — the paper's heuristic is fallible by
        # design, so we only assert on the clearly common name.)
        db, _ = small_db
        ts = build_training_set(db, n_positive=100, n_negative=100)
        assert "Wei Wang" not in ts.names_used()

    def test_pairs_reference_rows_of_their_name(self, small_db):
        db, truth = small_db
        ts = build_training_set(db, n_positive=50, n_negative=50)
        for pair in ts.pairs[:100]:
            assert pair.row_a in truth.rows_of_name[pair.name_a]
            assert pair.row_b in truth.rows_of_name[pair.name_b]

    def test_deterministic(self, small_db):
        db, _ = small_db
        a = build_training_set(db, n_positive=50, n_negative=50, seed=5)
        b = build_training_set(db, n_positive=50, n_negative=50, seed=5)
        assert a.pairs == b.pairs

    def test_seed_changes_sample(self, small_db):
        db, _ = small_db
        a = build_training_set(db, n_positive=50, n_negative=50, seed=1)
        b = build_training_set(db, n_positive=50, n_negative=50, seed=2)
        assert a.pairs != b.pairs

    def test_respects_min_refs(self, small_db):
        db, _ = small_db
        ts = build_training_set(db, n_positive=50, n_negative=50, min_refs=4)
        ref_index = db.index("Publish", "author_key")
        authors = db.table("Authors")
        for name in ts.rare_names:
            row = db.index("Authors", "name").lookup(name)[0]
            key = authors.row(row)[authors.schema.position("author_key")]
            assert ref_index.count(key) >= 4

    def test_raises_without_rare_names(self):
        schema = Schema()
        schema.add_relation(
            RelationSchema(
                "Authors",
                [Attribute("author_key", kind="key"), Attribute("name", kind="text")],
            )
        )
        schema.add_relation(
            RelationSchema("Publish", [Attribute("author_key", kind="fk")])
        )
        schema.add_foreign_key(
            ForeignKey("Publish", "author_key", "Authors", "author_key")
        )
        db = Database(schema)
        # Only common-token names, each appearing many times.
        for i in range(10):
            db.insert("Authors", (i, f"Wei Wang{i % 2}"))
            db.insert("Publish", (i,))
        with pytest.raises(TrainingError):
            build_training_set(db, n_positive=10, n_negative=10)

    def test_training_params_recorded(self, small_db):
        db, _ = small_db
        ts = build_training_set(db, n_positive=10, n_negative=20, seed=9)
        assert ts.params["n_positive"] == 10
        assert ts.params["n_negative"] == 20
        assert ts.params["seed"] == 9
