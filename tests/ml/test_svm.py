import numpy as np
import pytest
from scipy.optimize import minimize

from repro.errors import ConvergenceError, NotFittedError
from repro.ml import LinearSVM


def separable_data(seed=0, n=60):
    rng = np.random.default_rng(seed)
    X_pos = rng.normal(loc=[2.0, 2.0], scale=0.4, size=(n // 2, 2))
    X_neg = rng.normal(loc=[-2.0, -2.0], scale=0.4, size=(n // 2, 2))
    X = np.vstack([X_pos, X_neg])
    y = np.array([1.0] * (n // 2) + [-1.0] * (n // 2))
    return X, y


def noisy_data(seed=1, n=120):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    w_true = np.array([1.5, -2.0, 0.5])
    y = np.sign(X @ w_true + 0.3 * rng.normal(size=n))
    y[y == 0] = 1.0
    return X, y


class TestLinearSVMFit:
    def test_separates_separable_data(self):
        X, y = separable_data()
        svm = LinearSVM(C=1.0).fit(X, y)
        assert svm.accuracy(X, y) == 1.0

    def test_noisy_data_high_accuracy(self):
        X, y = noisy_data()
        svm = LinearSVM(C=1.0).fit(X, y)
        assert svm.accuracy(X, y) > 0.9

    def test_decision_function_sign_matches_predict(self):
        X, y = noisy_data()
        svm = LinearSVM().fit(X, y)
        scores = svm.decision_function(X)
        assert np.all((scores >= 0) == (svm.predict(X) == 1.0))

    def test_squared_hinge_loss_works(self):
        X, y = separable_data()
        svm = LinearSVM(loss="squared_hinge").fit(X, y)
        assert svm.accuracy(X, y) == 1.0

    def test_deterministic_given_seed(self):
        X, y = noisy_data()
        a = LinearSVM(seed=3).fit(X, y)
        b = LinearSVM(seed=3).fit(X, y)
        assert np.allclose(a.weights_, b.weights_)
        assert a.bias_ == b.bias_

    def test_dual_feasible(self):
        X, y = noisy_data()
        svm = LinearSVM(C=0.5).fit(X, y)
        assert np.all(svm.dual_coef_ >= -1e-12)
        assert np.all(svm.dual_coef_ <= 0.5 + 1e-12)

    def test_no_bias_option(self):
        X, y = separable_data()
        svm = LinearSVM(fit_bias=False).fit(X, y)
        assert svm.bias_ == 0.0
        assert svm.accuracy(X, y) == 1.0


class TestLinearSVMAgainstScipy:
    def test_squared_hinge_matches_direct_primal_minimization(self):
        # The squared-hinge primal is smooth, so BFGS gives a reference
        # optimum; both solvers regularize the bias (feature augmentation).
        X, y = noisy_data(seed=2, n=80)
        C = 1.0
        svm = LinearSVM(C=C, loss="squared_hinge", tol=1e-10).fit(X, y)

        Xa = np.hstack([X, np.ones((len(y), 1))])

        def objective(w):
            margins = np.maximum(0.0, 1.0 - y * (Xa @ w))
            return 0.5 * w @ w + C * np.sum(margins**2)

        ref = minimize(objective, np.zeros(Xa.shape[1]), method="BFGS")
        ours = objective(np.append(svm.weights_, svm.bias_))
        assert ours <= ref.fun * (1 + 1e-6) + 1e-9

    def test_hinge_primal_objective_near_reference(self):
        # L1 hinge is non-smooth; compare against a heavily smoothed Huber
        # surrogate optimum only loosely, plus verify our own objective is
        # consistent with the dual solution (weak duality gap ~ 0).
        X, y = noisy_data(seed=4, n=80)
        C = 1.0
        svm = LinearSVM(C=C, loss="hinge", tol=1e-10).fit(X, y)
        primal = svm.primal_objective(X, y)
        alpha = svm.dual_coef_
        Xa = np.hstack([X, np.ones((len(y), 1))])
        w = (alpha * y) @ Xa
        dual = np.sum(alpha) - 0.5 * w @ w
        assert primal - dual == pytest.approx(0.0, abs=1e-6)


class TestLinearSVMValidation:
    def test_rejects_bad_labels(self):
        X = np.zeros((4, 2))
        with pytest.raises(ValueError):
            LinearSVM().fit(X, [0, 1, 0, 1])

    def test_rejects_single_class(self):
        X = np.random.default_rng(0).normal(size=(4, 2))
        with pytest.raises(ValueError):
            LinearSVM().fit(X, [1, 1, 1, 1])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((4, 2)), [1, -1])
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros(4), [1, -1, 1, -1])

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            LinearSVM(C=0.0)
        with pytest.raises(ValueError):
            LinearSVM(loss="log")

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LinearSVM().decision_function([[1.0, 2.0]])

    def test_convergence_error_when_budget_tiny(self):
        X, y = noisy_data()
        with pytest.raises(ConvergenceError):
            LinearSVM(max_epochs=1, tol=1e-14).fit(X, y)

    def test_non_strict_keeps_partial_model(self):
        X, y = noisy_data()
        svm = LinearSVM(max_epochs=1, tol=1e-14, strict=False).fit(X, y)
        assert svm.weights_ is not None
