import numpy as np
import pytest

from repro.ml import LinearSVM


def imbalanced_data(seed=0, n_pos=80, n_neg=12):
    rng = np.random.default_rng(seed)
    X_pos = rng.normal(loc=[1.0, 0.6], scale=0.9, size=(n_pos, 2))
    X_neg = rng.normal(loc=[-1.0, -0.6], scale=0.9, size=(n_neg, 2))
    X = np.vstack([X_pos, X_neg])
    y = np.array([1.0] * n_pos + [-1.0] * n_neg)
    return X, y


class TestClassWeight:
    def test_invalid_class_weight_rejected(self):
        with pytest.raises(ValueError):
            LinearSVM(class_weight="boosted")

    def test_balanced_costs(self):
        svm = LinearSVM(C=2.0, class_weight="balanced")
        y = np.array([1.0, 1.0, 1.0, -1.0])
        costs = svm._per_example_cost(y)
        # positives: C*4/(2*3), negatives: C*4/(2*1)
        assert costs[:3] == pytest.approx([2.0 * 4 / 6] * 3)
        assert costs[3] == pytest.approx(4.0)

    def test_dict_class_weight(self):
        svm = LinearSVM(C=1.0, class_weight={1: 0.5, -1: 3.0})
        y = np.array([1.0, -1.0])
        assert svm._per_example_cost(y) == pytest.approx([0.5, 3.0])

    def test_none_is_uniform(self):
        svm = LinearSVM(C=1.5)
        assert svm._per_example_cost(np.array([1.0, -1.0])) == pytest.approx(
            [1.5, 1.5]
        )

    def test_balanced_improves_minority_recall(self):
        X, y = imbalanced_data()
        plain = LinearSVM(C=1.0, strict=False).fit(X, y)
        balanced = LinearSVM(C=1.0, class_weight="balanced", strict=False).fit(X, y)

        minority = y == -1.0
        recall_plain = float(np.mean(plain.predict(X[minority]) == -1.0))
        recall_balanced = float(np.mean(balanced.predict(X[minority]) == -1.0))
        assert recall_balanced >= recall_plain

    def test_hinge_dual_respects_per_example_box(self):
        X, y = imbalanced_data(n_pos=30, n_neg=10)
        svm = LinearSVM(
            C=1.0, loss="hinge", class_weight="balanced", strict=False
        ).fit(X, y)
        costs = svm._per_example_cost(y)
        assert np.all(svm.dual_coef_ <= costs + 1e-9)
        assert np.all(svm.dual_coef_ >= -1e-12)

    def test_weighted_duality_gap_small(self):
        X, y = imbalanced_data(n_pos=30, n_neg=10)
        svm = LinearSVM(
            C=1.0, loss="hinge", class_weight="balanced", tol=1e-10, strict=False
        ).fit(X, y)
        Xa = np.hstack([X, np.ones((len(y), 1))])
        w = (svm.dual_coef_ * y) @ Xa
        dual = np.sum(svm.dual_coef_) - 0.5 * w @ w
        assert svm.primal_objective(X, y) - dual == pytest.approx(0.0, abs=1e-5)


class TestXYChart:
    def test_renders_grid(self):
        from repro.eval.reporting import format_xy_chart

        points = [(0.001, 0.2), (0.01, 0.8), (0.1, 0.5)]
        text = format_xy_chart(points, title="sweep", x_label="min-sim", y_label="f1")
        assert "sweep" in text
        assert text.count("*") == 3
        assert "min-sim" in text
        assert "f1 in [0.200, 0.800]" in text

    def test_empty_points(self):
        from repro.eval.reporting import format_xy_chart

        assert format_xy_chart([], title="t") == "t"

    def test_single_point(self):
        from repro.eval.reporting import format_xy_chart

        text = format_xy_chart([(1.0, 0.5)])
        assert text.count("*") == 1
