"""Unit tests for the statement-level CFG builder."""

import ast
import textwrap

from repro.analysis.cfg import (
    EXC,
    FALSE,
    LOOP,
    NEXT,
    TRUE,
    build_cfg,
    function_cfgs,
)


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    [func] = [
        node for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    return build_cfg(func)


def node_at(cfg, line):
    """The unique non-synthetic node whose statement starts at ``line``."""
    matches = [
        node for node in cfg.nodes
        if node.stmt is not None and node.stmt.lineno == line
    ]
    assert len(matches) == 1, f"line {line}: {matches}"
    return matches[0]


def edge_labels(cfg, src, dst):
    return {e.label for e in cfg.succ(src.id if hasattr(src, "id") else src)
            if e.dst == (dst.id if hasattr(dst, "id") else dst)}


def test_straight_line_wiring():
    cfg = cfg_of(
        """
        def f(x):
            a = x + 1
            return a
        """
    )
    assign = node_at(cfg, 3)
    ret = node_at(cfg, 4)
    assert edge_labels(cfg, cfg.entry, assign) == {NEXT}
    assert edge_labels(cfg, assign, ret) == {NEXT}
    assert edge_labels(cfg, ret, cfg.exit) == {NEXT}
    # No try in sight: nothing routes to the exceptional exit.
    assert not cfg.pred(cfg.raise_exit)


def test_if_else_branch_polarity():
    cfg = cfg_of(
        """
        def f(x):
            if x is None:
                a = 1
            else:
                a = 2
            return a
        """
    )
    branch = node_at(cfg, 3)
    then = node_at(cfg, 4)
    other = node_at(cfg, 6)
    assert branch.kind == "branch"
    assert branch.test is not None  # the refinable condition
    assert edge_labels(cfg, branch, then) == {TRUE}
    assert edge_labels(cfg, branch, other) == {FALSE}
    # Both arms merge on the return.
    ret = node_at(cfg, 7)
    assert edge_labels(cfg, then, ret) == {NEXT}
    assert edge_labels(cfg, other, ret) == {NEXT}


def test_if_without_else_falls_through():
    cfg = cfg_of(
        """
        def f(x):
            if x:
                a = 1
            return x
        """
    )
    branch = node_at(cfg, 3)
    ret = node_at(cfg, 5)
    assert edge_labels(cfg, branch, ret) == {FALSE}


def test_while_loop_back_edge():
    cfg = cfg_of(
        """
        def f(n):
            while n > 0:
                n = n - 1
            return n
        """
    )
    head = node_at(cfg, 3)
    body = node_at(cfg, 4)
    assert edge_labels(cfg, head, body) == {TRUE}
    assert edge_labels(cfg, body, head) == {LOOP}
    assert edge_labels(cfg, head, node_at(cfg, 5)) == {FALSE}


def test_break_exits_the_loop():
    cfg = cfg_of(
        """
        def f(items):
            for item in items:
                if item:
                    break
            return items
        """
    )
    ret = node_at(cfg, 6)
    break_node = node_at(cfg, 5)
    assert edge_labels(cfg, break_node, ret) == {NEXT}


def test_raise_routes_to_raise_exit():
    cfg = cfg_of(
        """
        def f():
            raise ValueError("no")
        """
    )
    raiser = node_at(cfg, 3)
    assert edge_labels(cfg, raiser, cfg.raise_exit) == {EXC}
    assert not cfg.pred(cfg.exit)


def test_statements_inside_try_get_exception_edges():
    cfg = cfg_of(
        """
        def f(x):
            a = 1
            try:
                b = work(x)
            except ValueError:
                b = None
            return b
        """
    )
    outside = node_at(cfg, 3)
    inside = node_at(cfg, 5)
    handler_entry = node_at(cfg, 6)  # the ExceptHandler node
    assert not any(e.label == EXC for e in cfg.succ(outside.id))
    assert edge_labels(cfg, inside, handler_entry) >= {EXC}


def test_try_finally_reraise_node():
    cfg = cfg_of(
        """
        def f(x):
            try:
                a = work(x)
            finally:
                cleanup()
        """
    )
    cleanup = node_at(cfg, 6)
    [reraise] = [n for n in cfg.nodes if n.kind == "reraise"]
    # The exceptional pass-through leaves *after* the finally body ran.
    assert edge_labels(cfg, cleanup, reraise) == {NEXT}
    assert edge_labels(cfg, reraise, cfg.raise_exit) == {EXC}
    body = node_at(cfg, 4)
    assert not any(e.dst == cfg.raise_exit for e in cfg.succ(body.id))


def test_return_routes_through_finally():
    cfg = cfg_of(
        """
        def f(x):
            try:
                return work(x)
            finally:
                cleanup()
        """
    )
    ret = node_at(cfg, 4)
    cleanup = node_at(cfg, 6)
    [fin] = [n for n in cfg.nodes if n.kind == "finally"]
    # The return reaches the exit only via the finally body.
    assert NEXT in edge_labels(cfg, ret, fin)
    assert not any(e.dst == cfg.exit for e in cfg.succ(ret.id))
    assert edge_labels(cfg, fin, cleanup) == {NEXT}
    assert edge_labels(cfg, cleanup, cfg.exit) == {NEXT}


def test_finally_branch_labels_survive_to_continuations():
    # A conditional release in a finally must expose its TRUE/FALSE
    # edges on the way out, so dataflow refinement applies there too.
    cfg = cfg_of(
        """
        def f(handle):
            try:
                work()
            finally:
                if handle is not None:
                    handle.release()
        """
    )
    guard = node_at(cfg, 6)
    assert FALSE in edge_labels(cfg, guard, cfg.exit)
    [reraise] = [n for n in cfg.nodes if n.kind == "reraise"]
    assert FALSE in edge_labels(cfg, guard, reraise)


def test_with_is_a_transparent_container():
    cfg = cfg_of(
        """
        def f(path):
            with open(path) as fh:
                data = fh.read()
            return data
        """
    )
    with_node = node_at(cfg, 3)
    body = node_at(cfg, 4)
    assert edge_labels(cfg, with_node, body) == {NEXT}
    assert edge_labels(cfg, body, node_at(cfg, 5)) == {NEXT}


def test_code_after_return_is_unreachable():
    cfg = cfg_of(
        """
        def f():
            return 1
            unreachable()
        """
    )
    assert not any(
        node.stmt is not None and node.stmt.lineno == 4 for node in cfg.nodes
    )


def test_function_cfgs_names_nested_and_methods():
    tree = ast.parse(
        textwrap.dedent(
            """
            def outer():
                def inner():
                    pass
                return inner

            class Box:
                def get(self):
                    return 1
            """
        )
    )
    names = [name for name, _cfg in function_cfgs(tree)]
    assert names == ["outer", "outer.inner", "Box.get"]
