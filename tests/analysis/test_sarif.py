"""Unit tests for SARIF 2.1.0 output."""

import json
from pathlib import Path

from repro.analysis import Severity, format_sarif, run_lint, sarif_document

FIXTURES = Path(__file__).parent / "fixtures"


def lint_determinism():
    return run_lint(
        FIXTURES / "determinism",
        rules=[
            "determinism/set-iteration",
            "determinism/unkeyed-sort",
        ],
    )


def test_document_envelope():
    doc = sarif_document(lint_determinism())
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    [run] = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"


def test_rule_metadata_covers_the_catalogue():
    doc = sarif_document(lint_determinism())
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    ids = {rule["id"] for rule in rules}
    # The full catalogue ships as tool metadata regardless of which
    # rules fired, so consumers can always resolve ruleId.
    assert {
        "determinism/set-iteration",
        "lifecycle/leak",
        "taint/nondeterministic-sink",
        "forkstate/worker-global-mutation",
    } <= ids
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "error",
            "warning",
            "note",
        )


def test_results_map_severity_to_sarif_levels():
    doc = sarif_document(lint_determinism())
    results = doc["runs"][0]["results"]
    levels = {r["ruleId"]: r["level"] for r in results}
    assert levels["determinism/set-iteration"] == "error"
    assert levels["determinism/unkeyed-sort"] == "warning"


def test_result_location_shape():
    doc = sarif_document(lint_determinism())
    result = next(
        r
        for r in doc["runs"][0]["results"]
        if r["ruleId"] == "determinism/set-iteration"
    )
    [location] = result["locations"]
    physical = location["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == (
        "src/repro/similarity/unstable.py"
    )
    assert physical["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert physical["region"]["startLine"] == 5
    assert physical["region"]["startColumn"] >= 1
    assert "(" in result["message"]["text"]  # hint folded into message


def test_min_severity_filters_results():
    result = lint_determinism()
    full = sarif_document(result)
    errors_only = sarif_document(result, min_severity=Severity.ERROR)
    assert len(errors_only["runs"][0]["results"]) < len(
        full["runs"][0]["results"]
    )
    assert all(
        r["level"] == "error" for r in errors_only["runs"][0]["results"]
    )


def test_format_sarif_is_valid_json():
    payload = json.loads(format_sarif(lint_determinism()))
    assert payload["version"] == "2.1.0"
