"""Fixture: cross-cutting obs may import only errors, never perf."""

from repro.perf import ordered_process_map


def fan_out(task, items):
    return list(ordered_process_map(task, None, items, workers=2))
