"""Fixture: an upward import from paths (rank 20) into cluster (rank 40)."""

from repro.cluster.linkage import SingleLinkMeasure


def make_measure(matrix):
    return SingleLinkMeasure(matrix)
