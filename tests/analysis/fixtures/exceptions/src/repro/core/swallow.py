"""Fixture: a broad handler and a swallowed interrupt in the core layer."""

from repro.errors import DeadlineExceeded


def careless(fn):
    try:
        return fn()
    except Exception:
        return None


def absorbing(fn):
    try:
        return fn()
    except DeadlineExceeded:
        return None
