"""Fixture: every determinism hazard in one similarity-layer module."""


def first_key(mapping):
    for key in set(mapping):
        return key
    return None


def canonical(values):
    return sorted(values)


def keys_list(mapping):
    return [k for k in mapping.keys()]
