"""Fixture: RNGs constructed with and without a pinned seed."""

import random


def jitter_unsafe():
    rng = random.Random()
    return rng.uniform(0.0, 1.0)


def jitter_default_none(seed=None):
    rng = random.Random(seed)
    return rng.uniform(0.0, 1.0)


def jitter_pinned(seed=None):
    rng = random.Random(0 if seed is None else seed)
    return rng.uniform(0.0, 1.0)
