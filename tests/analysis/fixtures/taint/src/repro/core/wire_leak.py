"""Fixture: nondeterministic values flowing into persistence sinks."""

import time


def persist_unsafe(results, path):
    stamp = time.time()
    payload = {"results": results, "stamp": stamp}
    write_json_atomic(path, payload)


def persist_safe(results, path):
    payload = {"names": sorted(set(results))}
    write_json_atomic(path, payload)


def checksum_unsafe(rows, path):
    first = None
    for row in set(rows):
        first = row
        break
    attach_checksum(path, first)
