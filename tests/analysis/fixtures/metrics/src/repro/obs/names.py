"""Fixture metric registry: one live entry, one dead one."""

REGISTERED_METRICS: dict[str, str] = {
    "pipeline.items": "counter",
    "pipeline.ghost": "counter",
}
