"""Fixture instrumentation: one registered name, one typo."""

from repro.obs import counter

_ITEMS = counter("pipeline.items")
_TYPO = counter("pipeline.itmes")
