"""Fixture: a task function that mutates module state inside workers."""

from repro.obs import counter
from repro.perf.parallel import ordered_process_map

_CACHE = {}
_SEEN = []
_TASKS = counter("fixture.tasks")


def _task(payload, item):
    _CACHE[item] = payload
    _TASKS.add(1)
    _record(item)
    return item


def _record(item):
    _SEEN.append(item)


def run(payload, items):
    return list(ordered_process_map(_task, payload, items))
