"""Fixture: a lambda task handed to the process pool."""

from repro.perf import ordered_process_map


def run(items):
    return list(ordered_process_map(lambda payload, item: item, None, items))
