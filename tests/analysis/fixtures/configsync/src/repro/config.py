"""Fixture config: ``mystery_knob`` is undocumented and unreachable."""

from dataclasses import dataclass


@dataclass
class DistinctConfig:
    min_sim: float = 0.006
    mystery_knob: int = 3
