"""Fixture CLI: only the --min-sim flag exists."""

FLAGS = ("--min-sim",)
