"""Fixture: the deadline-tail shm leak, reconstructed buggy and fixed."""


def calibrate_buggy(distinct, grid, items, workers):
    payload = (distinct, grid)
    if workers > 1:
        payload = SharedPayload.wrap(payload)
    results = ordered_process_map(task, payload, items)
    try:
        for item in results:
            consume(item)
    finally:
        results.close()


def calibrate_fixed(distinct, grid, items, workers):
    payload = (distinct, grid)
    handle = None
    if workers > 1:
        payload = handle = SharedPayload.wrap(payload)
    results = ordered_process_map(task, payload, items)
    try:
        for item in results:
            consume(item)
    finally:
        results.close()
        if handle is not None:
            handle.release()


def pool_returned(workers):
    # Returning the acquire hands ownership to the caller: not a leak.
    return ProcessPoolExecutor(max_workers=workers)
