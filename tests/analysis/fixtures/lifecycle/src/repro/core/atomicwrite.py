"""Fixture: checkpoint rename with and without the durability fsync."""

import os


def checkpoint_unsafe(path, data):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(data)
    os.replace(tmp, path)


def checkpoint_safe(path, data):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
