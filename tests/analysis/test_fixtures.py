"""Golden fixture tests: each rule fires on its minimal offending snippet.

Every fixture under ``fixtures/`` is a miniature repo (``src/repro/...``
plus whatever docs the rule reads). Running the named rules over it must
produce exactly the expected ``(rule, path, line)`` findings — no more,
no fewer — except where noted (configsync also emits stale-entry noise
for the real flag map, asserted as a superset).
"""

from pathlib import Path

import pytest

from repro.analysis import Severity, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

EXACT_CASES = [
    (
        "layering",
        ["layering/import-dag"],
        {
            ("layering/import-dag", "src/repro/paths/uses_cluster.py", 3),
            ("layering/import-dag", "src/repro/obs/uses_perf.py", 3),
        },
    ),
    (
        "determinism",
        [
            "determinism/set-iteration",
            "determinism/unkeyed-sort",
            "determinism/dict-keys-iteration",
        ],
        {
            ("determinism/set-iteration", "src/repro/similarity/unstable.py", 5),
            ("determinism/unkeyed-sort", "src/repro/similarity/unstable.py", 11),
            (
                "determinism/dict-keys-iteration",
                "src/repro/similarity/unstable.py",
                15,
            ),
        },
    ),
    (
        "exceptions",
        ["exceptions/broad-except", "exceptions/swallowed-interrupt"],
        {
            ("exceptions/broad-except", "src/repro/core/swallow.py", 9),
            ("exceptions/swallowed-interrupt", "src/repro/core/swallow.py", 16),
        },
    ),
    (
        "metrics",
        ["metrics/unregistered", "metrics/unused"],
        {
            ("metrics/unregistered", "src/repro/core/instrumented.py", 6),
            ("metrics/unused", "src/repro/obs/names.py", 5),
        },
    ),
    (
        "picklability",
        ["picklability/unpicklable-task"],
        {
            (
                "picklability/unpicklable-task",
                "src/repro/eval/parallel_misuse.py",
                7,
            ),
        },
    ),
    # The lifecycle fixture reconstructs the real deadline-tail shm leak:
    # calibrate_buggy wraps a payload and releases on no path, while
    # calibrate_fixed (the guarded-release idiom the rule's hint
    # prescribes) and the returned-pool handoff must stay clean.
    (
        "lifecycle",
        ["lifecycle/leak", "lifecycle/fsync-before-rename"],
        {
            ("lifecycle/leak", "src/repro/perf/leaky.py", 7),
            (
                "lifecycle/fsync-before-rename",
                "src/repro/core/atomicwrite.py",
                10,
            ),
        },
    ),
    (
        "taint",
        ["taint/nondeterministic-sink", "taint/unseeded-rng"],
        {
            ("taint/nondeterministic-sink", "src/repro/core/wire_leak.py", 9),
            ("taint/nondeterministic-sink", "src/repro/core/wire_leak.py", 22),
            ("taint/unseeded-rng", "src/repro/resilience/jittery.py", 7),
            ("taint/unseeded-rng", "src/repro/resilience/jittery.py", 12),
        },
    ),
    # worker_mut mutates a dict and (through a helper, exercising the
    # call-chain reporting) a list from a task function handed to
    # ordered_process_map; the registered obs counter stays exempt.
    (
        "forkstate",
        ["forkstate/worker-global-mutation"],
        {
            (
                "forkstate/worker-global-mutation",
                "src/repro/perf/worker_mut.py",
                12,
            ),
            (
                "forkstate/worker-global-mutation",
                "src/repro/perf/worker_mut.py",
                19,
            ),
        },
    ),
]


@pytest.mark.parametrize(
    "fixture, rules, expected",
    EXACT_CASES,
    ids=[case[0] for case in EXACT_CASES],
)
def test_rule_fires_on_fixture(fixture, rules, expected):
    result = run_lint(FIXTURES / fixture, rules=rules)
    got = {(f.rule, f.path, f.line) for f in result.findings}
    assert got == expected
    assert result.n_errors >= 1
    assert not result.ok


def test_configsync_fixture():
    result = run_lint(FIXTURES / "configsync", rules=["config/undocumented"])
    got = {(f.rule, f.path, f.line) for f in result.findings}
    # mystery_knob (config.py line 9) is both undocumented and unreachable.
    assert ("config/undocumented", "src/repro/config.py", 9) in got
    assert ("config/unreachable", "src/repro/config.py", 9) in got
    # min_sim is documented and its --min-sim flag exists in the fixture
    # CLI, so it produces nothing.
    assert not any(
        "min_sim'" in f.message for f in result.findings
    )
    # The default flag map / programmatic list reference real fields the
    # fixture dataclass lacks; those surface as stale entries.
    assert ("config/stale-entry", "src/repro/config.py", 1) in got
    assert not result.ok


def test_forkstate_reports_the_call_chain():
    result = run_lint(
        FIXTURES / "forkstate", rules=["forkstate/worker-global-mutation"]
    )
    [chained] = [f for f in result.findings if f.line == 19]
    assert "via _task -> _record" in chained.message


def test_fixture_findings_are_errors():
    for fixture, rules, expected in EXACT_CASES:
        result = run_lint(FIXTURES / fixture, rules=rules)
        by_key = {(f.rule, f.path, f.line): f for f in result.findings}
        for key in expected:
            finding = by_key[key]
            if finding.rule in (
                "determinism/unkeyed-sort",
                "determinism/dict-keys-iteration",
            ):
                assert finding.severity is Severity.WARNING
            else:
                assert finding.severity is Severity.ERROR
            assert finding.message
