"""End-to-end tests of ``repro lint``."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def test_repo_lints_clean_text(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_fixture_exits_nonzero_with_findings(capsys):
    code = main(
        [
            "lint",
            "--root", str(FIXTURES / "layering"),
            "--rules", "layering/import-dag",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "src/repro/paths/uses_cluster.py:3" in out
    assert "[layering/import-dag]" in out


def test_json_output_shape(capsys):
    code = main(
        [
            "lint",
            "--root", str(FIXTURES / "determinism"),
            "--rules", "determinism/set-iteration",
            "--format", "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["format_version"] == 1
    assert payload["counts"]["error"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "determinism/set-iteration"
    assert finding["path"] == "src/repro/similarity/unstable.py"
    assert finding["line"] == 5
    assert finding["severity"] == "error"
    assert finding["hint"]


def test_output_file_written(tmp_path, capsys):
    report = tmp_path / "lint.json"
    code = main(
        [
            "lint",
            "--root", str(FIXTURES / "picklability"),
            "--rules", "picklability/unpicklable-task",
            "--output", str(report),
        ]
    )
    capsys.readouterr()
    assert code == 1
    payload = json.loads(report.read_text())
    assert payload["counts"]["error"] == 1


def test_min_severity_filters_text(capsys):
    # The determinism fixture has one error and two warnings.
    assert (
        main(
            [
                "lint",
                "--root", str(FIXTURES / "determinism"),
                "--rules",
                "determinism/set-iteration,determinism/unkeyed-sort",
                "--min-severity", "error",
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "set-iteration" in out
    assert "unkeyed-sort" not in out


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "layering/import-dag" in out
    assert "picklability/unpicklable-task" in out


def test_unknown_rule_is_usage_error(capsys):
    code = main(["lint", "--root", str(REPO_ROOT), "--rules", "no/such"])
    capsys.readouterr()
    assert code == 2


def test_missing_root_is_usage_error(tmp_path, capsys):
    code = main(["lint", "--root", str(tmp_path / "nowhere")])
    capsys.readouterr()
    assert code == 2
