"""End-to-end tests of ``repro lint``."""

import json
import shutil
import subprocess
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

LAYERING_RULE = "layering/import-dag"
LAYERING_FILE = "src/repro/paths/uses_cluster.py"


def copy_fixture(name, tmp_path):
    """A writable copy of a fixture repo (for baseline/changed runs)."""
    dest = tmp_path / name
    shutil.copytree(FIXTURES / name, dest)
    return dest


def git(repo, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


def test_repo_lints_clean_text(capsys):
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_fixture_exits_nonzero_with_findings(capsys):
    code = main(
        [
            "lint",
            "--root", str(FIXTURES / "layering"),
            "--rules", "layering/import-dag",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "src/repro/paths/uses_cluster.py:3" in out
    assert "[layering/import-dag]" in out


def test_json_output_shape(capsys):
    code = main(
        [
            "lint",
            "--root", str(FIXTURES / "determinism"),
            "--rules", "determinism/set-iteration",
            "--format", "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["format_version"] == 1
    assert payload["counts"]["error"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "determinism/set-iteration"
    assert finding["path"] == "src/repro/similarity/unstable.py"
    assert finding["line"] == 5
    assert finding["severity"] == "error"
    assert finding["hint"]


def test_output_file_written(tmp_path, capsys):
    report = tmp_path / "lint.json"
    code = main(
        [
            "lint",
            "--root", str(FIXTURES / "picklability"),
            "--rules", "picklability/unpicklable-task",
            "--output", str(report),
        ]
    )
    capsys.readouterr()
    assert code == 1
    payload = json.loads(report.read_text())
    assert payload["counts"]["error"] == 1


def test_min_severity_filters_text(capsys):
    # The determinism fixture has one error and two warnings.
    assert (
        main(
            [
                "lint",
                "--root", str(FIXTURES / "determinism"),
                "--rules",
                "determinism/set-iteration,determinism/unkeyed-sort",
                "--min-severity", "error",
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "set-iteration" in out
    assert "unkeyed-sort" not in out


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "layering/import-dag" in out
    assert "picklability/unpicklable-task" in out


def test_sarif_output_on_stdout(capsys):
    code = main(
        [
            "lint",
            "--root", str(FIXTURES / "layering"),
            "--rules", LAYERING_RULE,
            "--format", "sarif",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == "2.1.0"
    results = payload["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {LAYERING_RULE}
    uris = {
        r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for r in results
    }
    assert LAYERING_FILE in uris


def test_sarif_out_writes_file_alongside_text(tmp_path, capsys):
    report = tmp_path / "ci" / "lint.sarif"
    code = main(
        [
            "lint",
            "--root", str(FIXTURES / "layering"),
            "--rules", LAYERING_RULE,
            "--sarif-out", str(report),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "[layering/import-dag]" in out  # stdout stays human-readable
    payload = json.loads(report.read_text())
    assert payload["runs"][0]["results"]


def test_write_baseline_then_baseline_suppresses(tmp_path, capsys):
    root = copy_fixture("layering", tmp_path)
    assert (
        main(
            [
                "lint",
                "--root", str(root),
                "--rules", LAYERING_RULE,
                "--write-baseline",
            ]
        )
        == 0
    )
    capsys.readouterr()
    baseline = json.loads((root / "lint-baseline.json").read_text())
    assert len(baseline["fingerprints"]) == 2
    code = main(
        [
            "lint",
            "--root", str(root),
            "--rules", LAYERING_RULE,
            "--baseline",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "0 error(s)" in out
    assert "2 finding(s) suppressed" in out


def test_baseline_missing_file_is_usage_error(tmp_path, capsys):
    root = copy_fixture("layering", tmp_path)
    code = main(
        [
            "lint",
            "--root", str(root),
            "--rules", LAYERING_RULE,
            "--baseline", "no-such-baseline.json",
        ]
    )
    capsys.readouterr()
    assert code == 2


def test_changed_scopes_the_report(tmp_path, capsys):
    root = copy_fixture("layering", tmp_path)
    git(root, "init", "-q")
    git(root, "add", ".")
    git(root, "commit", "-qm", "seed")
    # Clean tree: the findings exist but are out of scope.
    assert (
        main(
            [
                "lint",
                "--root", str(root),
                "--rules", LAYERING_RULE,
                "--changed",
            ]
        )
        == 0
    )
    capsys.readouterr()
    # Touch one offending file: its finding comes back into scope.
    offender = root / LAYERING_FILE
    offender.write_text(offender.read_text() + "\n# touched\n")
    code = main(
        [
            "lint",
            "--root", str(root),
            "--rules", LAYERING_RULE,
            "--changed",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert LAYERING_FILE in out
    assert "uses_perf.py" not in out  # the untouched finding stays hidden


def test_changed_bad_ref_is_usage_error(tmp_path, capsys):
    root = copy_fixture("layering", tmp_path)
    git(root, "init", "-q")
    git(root, "add", ".")
    git(root, "commit", "-qm", "seed")
    code = main(
        [
            "lint",
            "--root", str(root),
            "--rules", LAYERING_RULE,
            "--changed", "no-such-ref",
        ]
    )
    capsys.readouterr()
    assert code == 2


def test_unknown_rule_is_usage_error(capsys):
    code = main(["lint", "--root", str(REPO_ROOT), "--rules", "no/such"])
    capsys.readouterr()
    assert code == 2


def test_missing_root_is_usage_error(tmp_path, capsys):
    code = main(["lint", "--root", str(tmp_path / "nowhere")])
    capsys.readouterr()
    assert code == 2
