"""Engine semantics: suppressions, allowlists, overrides, failure modes."""

import pytest

from repro.analysis import (
    AllowEntry,
    LintConfig,
    Severity,
    load_config,
    run_lint,
)

OFFENDING = (
    '"""Module under test."""\n'
    "\n"
    "\n"
    "def first(mapping):\n"
    "    for key in set(mapping):\n"
    "        return key\n"
    "    return None\n"
)

RULE = "determinism/set-iteration"


def write_project(root, files):
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return root


def test_finding_reported(tmp_path):
    write_project(tmp_path, {"src/repro/similarity/mod.py": OFFENDING})
    result = run_lint(tmp_path, rules=[RULE])
    assert [(f.rule, f.line) for f in result.findings] == [(RULE, 5)]
    assert result.n_errors == 1
    assert not result.ok


def test_out_of_scope_package_is_clean(tmp_path):
    # eval is not in the determinism scope; the same code passes there.
    write_project(tmp_path, {"src/repro/eval/mod.py": OFFENDING})
    result = run_lint(tmp_path, rules=[RULE])
    assert result.findings == []
    assert result.ok


def test_inline_suppression_same_line(tmp_path):
    code = OFFENDING.replace(
        "for key in set(mapping):",
        "for key in set(mapping):  # lint: allow[determinism/set-iteration] ok",
    )
    write_project(tmp_path, {"src/repro/similarity/mod.py": code})
    result = run_lint(tmp_path, rules=[RULE])
    assert result.findings == []
    assert result.n_suppressed == 1


def test_inline_suppression_line_above(tmp_path):
    code = OFFENDING.replace(
        "    for key in set(mapping):",
        "    # lint: allow[determinism/set-iteration] ok\n"
        "    for key in set(mapping):",
    )
    write_project(tmp_path, {"src/repro/similarity/mod.py": code})
    result = run_lint(tmp_path, rules=[RULE])
    assert result.findings == []
    assert result.n_suppressed == 1


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    code = OFFENDING.replace(
        "for key in set(mapping):",
        "for key in set(mapping):  # lint: allow[determinism/unkeyed-sort] no",
    )
    write_project(tmp_path, {"src/repro/similarity/mod.py": code})
    result = run_lint(tmp_path, rules=[RULE])
    assert len(result.findings) == 1
    assert result.n_suppressed == 0


def test_allowlist_with_glob(tmp_path):
    write_project(tmp_path, {"src/repro/similarity/mod.py": OFFENDING})
    config = LintConfig(
        allowlist=(
            AllowEntry(
                rule=RULE,
                path="src/repro/similarity/*.py",
                reason="fixture exemption",
            ),
        )
    )
    result = run_lint(tmp_path, config=config, rules=[RULE])
    assert result.findings == []
    assert result.n_suppressed == 1


def test_severity_override_downgrades(tmp_path):
    write_project(tmp_path, {"src/repro/similarity/mod.py": OFFENDING})
    config = LintConfig(severity_overrides={RULE: Severity.WARNING})
    result = run_lint(tmp_path, config=config, rules=[RULE])
    assert result.findings[0].severity is Severity.WARNING
    assert result.n_errors == 0
    assert result.ok


def test_unknown_rule_id_raises(tmp_path):
    write_project(tmp_path, {"src/repro/similarity/mod.py": OFFENDING})
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint(tmp_path, rules=["no/such-rule"])


def test_syntax_error_becomes_finding(tmp_path):
    write_project(tmp_path, {"src/repro/similarity/broken.py": "def (:\n"})
    result = run_lint(tmp_path, rules=[RULE])
    assert [f.rule for f in result.findings] == ["parse/syntax-error"]
    assert not result.ok


def test_load_config_defaults_without_pyproject(tmp_path):
    config = load_config(tmp_path)
    assert config.severity_overrides == {}
    assert config.allowlist == ()


def test_load_config_parses_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\n"
        'severity = { "determinism/unkeyed-sort" = "info" }\n'
        "\n"
        "[[tool.repro-lint.allow]]\n"
        'rule = "layering/import-dag"\n'
        'path = "src/repro/ml/calibration.py"\n'
        'reason = "compat shim"\n'
    )
    config = load_config(tmp_path)
    assert config.severity_overrides == {
        "determinism/unkeyed-sort": Severity.INFO
    }
    assert config.allowlist == (
        AllowEntry(
            rule="layering/import-dag",
            path="src/repro/ml/calibration.py",
            reason="compat shim",
        ),
    )


def test_load_config_rejects_unjustified_allow(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[[tool.repro-lint.allow]]\n"
        'rule = "layering/import-dag"\n'
        'path = "src/repro/ml/calibration.py"\n'
    )
    with pytest.raises(ValueError, match="reason"):
        load_config(tmp_path)
