"""Unit tests for the committed finding baseline."""

import json

import pytest

from repro.analysis import (
    Severity,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.baseline import BaselineError
from repro.analysis.findings import Finding, LintResult


def make_finding(rule="lifecycle/leak", path="src/repro/a.py", line=10,
                 message="leak"):
    return Finding(
        rule=rule,
        severity=Severity.ERROR,
        path=path,
        line=line,
        message=message,
    )


def result_of(*findings):
    return LintResult(findings=list(findings), n_modules=1, n_suppressed=0)


def test_fingerprint_ignores_line_drift():
    # The whole point: unrelated edits that shift code must not
    # resurrect baselined findings.
    assert fingerprint(make_finding(line=10)) == fingerprint(
        make_finding(line=99)
    )
    assert fingerprint(make_finding(message="leak")) != fingerprint(
        make_finding(message="other leak")
    )
    assert fingerprint(make_finding(path="src/repro/a.py")) != fingerprint(
        make_finding(path="src/repro/b.py")
    )


def test_write_and_load_round_trip(tmp_path):
    target = tmp_path / "lint-baseline.json"
    result = result_of(make_finding(), make_finding(line=20))
    payload = write_baseline(result, target)
    assert payload["format_version"] == 1
    budgets = load_baseline(target)
    fp = fingerprint(make_finding())
    # Two identical-fingerprint findings -> a budget of two.
    assert budgets == {fp: 2}
    entry = payload["fingerprints"][fp]
    assert entry["rule"] == "lifecycle/leak"
    assert entry["path"] == "src/repro/a.py"


def test_apply_baseline_suppresses_within_budget():
    result = result_of(make_finding(), make_finding(line=20))
    budgets = {fingerprint(make_finding()): 1}
    applied = apply_baseline(result, budgets)
    # One suppressed against the budget, the *second* identical
    # violation still surfaces.
    assert len(applied.findings) == 1
    assert applied.n_suppressed == 1
    assert not applied.ok


def test_apply_baseline_empty_budget_keeps_everything():
    result = result_of(make_finding())
    applied = apply_baseline(result, {})
    assert applied.findings == result.findings
    assert applied.n_suppressed == 0


def test_apply_baseline_full_budget_clears_the_run():
    result = result_of(make_finding())
    applied = apply_baseline(result, {fingerprint(make_finding()): 5})
    assert applied.findings == []
    assert applied.ok


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(BaselineError, match="cannot read"):
        load_baseline(tmp_path / "nope.json")


def test_load_rejects_invalid_json(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(bad)


def test_load_rejects_unknown_format_version(tmp_path):
    future = tmp_path / "future.json"
    future.write_text(json.dumps({"format_version": 99, "fingerprints": {}}))
    with pytest.raises(BaselineError, match="format_version"):
        load_baseline(future)


def test_committed_repo_baseline_is_empty_steady_state():
    # The repo ships an empty baseline: all findings are fixed or
    # inline-allowed, and the file documents that steady state.
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    budgets = load_baseline(repo_root / "lint-baseline.json")
    assert budgets == {}
