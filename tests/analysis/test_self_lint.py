"""The repository must satisfy its own contracts.

This is the enforcement point for the architecture rules: any
error-severity finding on the real tree fails the build (warnings are
tolerated; they are advisory by design).
"""

from pathlib import Path

from repro.analysis import Severity, load_config, run_lint, rule_catalogue

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_has_no_error_findings():
    result = run_lint(REPO_ROOT, config=load_config(REPO_ROOT))
    errors = [f for f in result.findings if f.severity >= Severity.ERROR]
    assert not errors, "\n" + "\n".join(f.render() for f in errors)


def test_repo_scan_covers_the_tree():
    result = run_lint(REPO_ROOT)
    # The package has ~100 modules; a collapsed scan would mean the
    # loader looked at the wrong root.
    assert result.n_modules > 50


def test_rule_catalogue_covers_all_families():
    ids = {entry["id"] for entry in rule_catalogue()}
    assert {
        "layering/import-dag",
        "determinism/set-iteration",
        "determinism/unkeyed-sort",
        "determinism/dict-keys-iteration",
        "exceptions/broad-except",
        "exceptions/swallowed-interrupt",
        "metrics/unregistered",
        "metrics/unused",
        "metrics/kind-mismatch",
        "metrics/dynamic-name",
        "config/undocumented",
        "config/unreachable",
        "config/flag-missing",
        "config/stale-entry",
        "picklability/unpicklable-task",
        "lifecycle/leak",
        "lifecycle/fsync-before-rename",
        "taint/nondeterministic-sink",
        "taint/unseeded-rng",
        "forkstate/worker-global-mutation",
    } <= ids
