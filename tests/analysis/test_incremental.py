"""Unit tests for ``--changed``: report scoping to git-touched files."""

import subprocess

import pytest

from repro.analysis import Severity, changed_files, filter_to_changed
from repro.analysis.findings import Finding, LintResult
from repro.analysis.incremental import ChangedFilesError


def git(repo, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


@pytest.fixture()
def repo(tmp_path):
    git(tmp_path, "init", "-q")
    (tmp_path / "committed.py").write_text("a = 1\n")
    (tmp_path / "stable.py").write_text("b = 2\n")
    git(tmp_path, "add", ".")
    git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


def test_changed_files_sees_modified_and_untracked(repo):
    (repo / "committed.py").write_text("a = 3\n")
    (repo / "fresh.py").write_text("c = 4\n")
    changed = changed_files(repo)
    assert changed == {"committed.py", "fresh.py"}


def test_changed_files_clean_tree_is_empty(repo):
    assert changed_files(repo) == frozenset()


def test_changed_files_against_explicit_ref(repo):
    (repo / "committed.py").write_text("a = 3\n")
    git(repo, "commit", "-aqm", "edit")
    assert changed_files(repo, "HEAD") == frozenset()
    assert changed_files(repo, "HEAD~1") == {"committed.py"}


def test_changed_files_bad_ref_raises(repo):
    with pytest.raises(ChangedFilesError, match="failed"):
        changed_files(repo, "no-such-ref")


def test_filter_to_changed_keeps_only_touched_paths():
    touched = Finding(
        rule="lifecycle/leak",
        severity=Severity.ERROR,
        path="src/repro/touched.py",
        line=3,
        message="leak",
    )
    untouched = Finding(
        rule="lifecycle/leak",
        severity=Severity.ERROR,
        path="src/repro/other.py",
        line=7,
        message="leak",
    )
    result = LintResult(
        findings=[touched, untouched], n_modules=2, n_suppressed=1
    )
    filtered = filter_to_changed(
        result, frozenset({"src/repro/touched.py"})
    )
    assert filtered.findings == [touched]
    # Out-of-scope findings are dropped, not "suppressed": the counter
    # tracks exemptions, and module totals describe the whole analysis.
    assert filtered.n_suppressed == 1
    assert filtered.n_modules == 2
