"""Unit tests for project-wide call-graph construction and queries."""

import pytest

from repro.analysis import build_call_graph
from repro.analysis.project import load_project


@pytest.fixture()
def project(tmp_path):
    pkg = tmp_path / "src" / "repro"
    (pkg / "core").mkdir(parents=True)
    (pkg / "perf").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "core" / "__init__.py").write_text("")
    (pkg / "perf" / "__init__.py").write_text("")
    (pkg / "perf" / "pool.py").write_text(
        "def run_task(item):\n"
        "    return item\n"
        "\n"
        "\n"
        "class Pool:\n"
        "    def __init__(self, n):\n"
        "        self.n = n\n"
        "        self.prime()\n"
        "\n"
        "    def prime(self):\n"
        "        return self.n\n"
    )
    (pkg / "core" / "driver.py").write_text(
        "import repro.perf.pool as pool\n"
        "from repro.perf.pool import Pool, run_task as task\n"
        "\n"
        "\n"
        "def helper(item):\n"
        "    return task(item)\n"
        "\n"
        "\n"
        "def main(items):\n"
        "    p = Pool(2)\n"
        "    pool.run_task(items[0])\n"
        "    return [helper(i) for i in items]\n"
    )
    return load_project(tmp_path)


def test_functions_are_keyed_by_qualname(project):
    graph = build_call_graph(project)
    assert "repro.perf.pool.run_task" in graph.functions
    assert "repro.perf.pool.Pool.prime" in graph.functions
    assert graph.functions["repro.core.driver.main"].module == (
        "repro.core.driver"
    )


def test_call_resolution_forms(project):
    graph = build_call_graph(project)
    # Aliased from-import in call position.
    assert "repro.perf.pool.run_task" in graph.callees(
        "repro.core.driver.helper"
    )
    main_callees = set(graph.callees("repro.core.driver.main"))
    # Constructor resolves to __init__; module-attribute call resolves
    # through the import alias; local helper resolves at module level.
    assert "repro.perf.pool.Pool.__init__" in main_callees
    assert "repro.perf.pool.run_task" in main_callees
    assert "repro.core.driver.helper" in main_callees
    # self.method() resolves within the enclosing class.
    assert "repro.perf.pool.Pool.prime" in graph.callees(
        "repro.perf.pool.Pool.__init__"
    )


def test_reachable_from_records_call_chains(project):
    graph = build_call_graph(project)
    chains = graph.reachable_from(["repro.core.driver.main"])
    assert chains["repro.core.driver.main"] == ["repro.core.driver.main"]
    assert chains["repro.perf.pool.run_task"][0] == "repro.core.driver.main"
    assert chains["repro.perf.pool.Pool.prime"] == [
        "repro.core.driver.main",
        "repro.perf.pool.Pool.__init__",
        "repro.perf.pool.Pool.prime",
    ]
    # Unknown roots are ignored rather than failing.
    assert graph.reachable_from(["no.such.fn"]) == {}


def test_resolve_names_outside_call_position(project):
    graph = build_call_graph(project)
    # `task` is the imported alias of run_task — exactly how fork-rule
    # roots passed as ordered_process_map arguments are resolved.
    assert graph.resolve("repro.core.driver", "task") == (
        "repro.perf.pool.run_task"
    )
    assert graph.resolve("repro.core.driver", "Pool") == (
        "repro.perf.pool.Pool.__init__"
    )
    assert graph.resolve("repro.core.driver", "missing") is None


def test_by_suffix(project):
    graph = build_call_graph(project)
    assert graph.by_suffix("run_task") == ["repro.perf.pool.run_task"]
    assert graph.by_suffix("Pool.prime") == ["repro.perf.pool.Pool.prime"]
