"""Unit tests for the worklist fixpoint framework."""

import ast
import textwrap

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    MAY,
    MUST,
    FixpointDiverged,
    ForwardAnalysis,
    GenKillAnalysis,
    reachable_without,
    statement_lines,
)


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    [func] = [
        node for node in tree.body if isinstance(node, ast.FunctionDef)
    ]
    return build_cfg(func)


class _CallFacts(GenKillAnalysis):
    """Gen the name of every function called in an expression statement.

    Restricted to ``ast.Expr`` on purpose: a compound statement's CFG
    node must not gen facts that belong to its body's own nodes.
    """

    def gen(self, node):
        if not isinstance(node.stmt, ast.Expr):
            return frozenset()
        return frozenset(
            sub.func.id
            for sub in ast.walk(node.stmt)
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
        )


def test_may_facts_flow_around_a_loop():
    cfg = cfg_of(
        """
        def f(items):
            for item in items:
                touch(item)
            return items
        """
    )
    states = _CallFacts(mode=MAY).solve(cfg)
    # The loop-body fact reaches the exit (the zero-iteration path joins
    # in by union, so the fact *may* hold).
    assert "touch" in states[cfg.exit]


def test_must_facts_require_every_path():
    cfg = cfg_of(
        """
        def f(x):
            if x:
                prepare()
            finish()
        """
    )
    universe = frozenset({"prepare", "finish"})
    states = _CallFacts(mode=MUST, universe=universe).solve(cfg)
    # prepare() happens on only one arm: not a MUST fact at the exit.
    assert "prepare" not in states[cfg.exit]
    assert "finish" in states[cfg.exit]

    states_may = _CallFacts(mode=MAY).solve(cfg)
    assert "prepare" in states_may[cfg.exit]


def test_must_facts_survive_straight_lines():
    cfg = cfg_of(
        """
        def f(path):
            prepare()
            finish()
        """
    )
    states = _CallFacts(
        mode=MUST, universe=frozenset({"prepare", "finish"})
    ).solve(cfg)
    assert "prepare" in states[cfg.exit]


def test_genkill_rejects_unknown_mode():
    with pytest.raises(ValueError):
        _CallFacts(mode="sometimes")


class _AssignedNames(ForwardAnalysis):
    """Names assigned so far, with a None-guard refine hook."""

    def initial(self):
        return frozenset()

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, node, state):
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            return state | {
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            }
        return state

    def refine(self, test, polarity, state):
        # On the `x is None` branch, forget x entirely.
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and isinstance(test.ops[0], ast.Is)
            and polarity
        ):
            return state - {test.left.id}
        return state


def test_refine_narrows_along_branch_edges():
    cfg = cfg_of(
        """
        def f(flag):
            x = make()
            if x is None:
                out = fallback()
            else:
                out = x
            return out
        """
    )
    states = _AssignedNames().solve(cfg)
    fallback_assign = next(
        n for n in cfg.nodes
        if n.stmt is not None and n.stmt.lineno == 5
    )
    else_assign = next(
        n for n in cfg.nodes
        if n.stmt is not None and n.stmt.lineno == 7
    )
    assert "x" not in states[fallback_assign.id]  # the is-None arm
    assert "x" in states[else_assign.id]


class _Diverging(ForwardAnalysis):
    """A deliberately non-monotone lattice: an ever-growing counter."""

    def initial(self):
        return 0

    def bottom(self):
        return 0

    def join(self, a, b):
        return max(a, b)

    def transfer(self, node, state):
        return state + 1


def test_divergence_raises_instead_of_hanging():
    cfg = cfg_of(
        """
        def f(n):
            while n:
                n = step(n)
            return n
        """
    )
    with pytest.raises(FixpointDiverged):
        _Diverging().solve(cfg)


def test_every_node_is_visited_even_without_state_change():
    # Facts generated mid-graph from the bottom state must still appear:
    # this is exactly the worklist-seeding property.
    cfg = cfg_of(
        """
        def f():
            touch()
        """
    )
    states = _CallFacts(mode=MAY).solve(cfg)
    assert "touch" in states[cfg.exit]


def test_reachable_without_blocks_paths():
    cfg = cfg_of(
        """
        def f(x):
            a = acquire()
            release(a)
            return None
        """
    )
    release_node = next(
        n for n in cfg.nodes if n.stmt is not None and n.stmt.lineno == 4
    )
    reachable = reachable_without(
        cfg, cfg.entry, frozenset({release_node.id})
    )
    assert cfg.exit not in reachable
    assert reachable_without(cfg, cfg.entry, frozenset()) >= {
        cfg.entry,
        cfg.exit,
    }


def test_statement_lines_maps_real_nodes_only():
    cfg = cfg_of(
        """
        def f():
            a = 1
            return a
        """
    )
    lines = statement_lines(cfg)
    assert set(lines.values()) == {3, 4}
    assert cfg.entry not in lines
