import pytest

from repro.eval.metrics import (
    bcubed_scores,
    cluster_count_error,
    pairwise_scores,
)


class TestPairwiseScores:
    def test_perfect_clustering(self):
        gold = [{1, 2, 3}, {4, 5}]
        scores = pairwise_scores(gold, gold)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0
        assert scores.accuracy == 1.0
        assert scores.tp == 4  # C(3,2) + C(2,2)

    def test_everything_merged(self):
        gold = [{1, 2}, {3, 4}]
        pred = [{1, 2, 3, 4}]
        scores = pairwise_scores(pred, gold)
        assert scores.tp == 2
        assert scores.fp == 4
        assert scores.fn == 0
        assert scores.precision == pytest.approx(2 / 6)
        assert scores.recall == 1.0

    def test_everything_split(self):
        gold = [{1, 2, 3}]
        pred = [{1}, {2}, {3}]
        scores = pairwise_scores(pred, gold)
        assert scores.tp == 0
        assert scores.precision == 1.0  # no predicted pairs -> vacuous
        assert scores.recall == 0.0
        assert scores.f1 == 0.0
        assert scores.accuracy == 0.0

    def test_hand_computed_mixed_case(self):
        gold = [{1, 2, 3}, {4, 5}]
        pred = [{1, 2}, {3, 4, 5}]
        scores = pairwise_scores(pred, gold)
        # predicted pairs: (1,2) TP, (3,4) FP, (3,5) FP, (4,5) TP
        assert scores.tp == 2
        assert scores.fp == 2
        assert scores.fn == 2  # (1,3), (2,3)
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == pytest.approx(0.5)
        # total pairs C(5,2)=10, tn = 10-2-2-2=4 -> acc = 6/10
        assert scores.accuracy == pytest.approx(0.6)

    def test_singletons_only(self):
        scores = pairwise_scores([{1}, {2}], [{1}, {2}])
        assert scores.precision == 1.0
        assert scores.recall == 1.0

    def test_item_in_two_clusters_rejected(self):
        with pytest.raises(ValueError):
            pairwise_scores([{1, 2}, {2}], [{1}, {2}])

    def test_coverage_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pairwise_scores([{1, 2}], [{1, 2, 3}])

    def test_symmetric_under_cluster_order(self):
        gold = [{1, 2}, {3, 4, 5}]
        pred = [{5, 4, 3}, {2, 1}]
        scores = pairwise_scores(pred, gold)
        assert scores.f1 == 1.0


class TestBCubed:
    def test_perfect(self):
        gold = [{1, 2}, {3}]
        scores = bcubed_scores(gold, gold)
        assert scores.f1 == 1.0

    def test_merged_penalizes_precision(self):
        gold = [{1, 2}, {3, 4}]
        pred = [{1, 2, 3, 4}]
        scores = bcubed_scores(pred, gold)
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == 1.0

    def test_split_penalizes_recall(self):
        gold = [{1, 2, 3, 4}]
        pred = [{1, 2}, {3, 4}]
        scores = bcubed_scores(pred, gold)
        assert scores.precision == 1.0
        assert scores.recall == pytest.approx(0.5)

    def test_bcubed_gentler_than_pairwise_on_large_merges(self):
        gold = [{i} for i in range(10)]
        pred = [set(range(10))]
        bc = bcubed_scores(pred, gold)
        pw = pairwise_scores(pred, gold)
        assert bc.precision > pw.precision == 0.0


class TestClusterCountError:
    def test_value(self):
        assert cluster_count_error([{1}, {2}], [{1, 2}]) == 1
        assert cluster_count_error([{1}], [{1}]) == 0
