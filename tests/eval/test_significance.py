import pytest

from repro.eval.experiment import ExperimentResult, NameResult
from repro.eval.metrics import ClusterScores
from repro.eval.significance import paired_bootstrap


def make_result(key, f1_by_name):
    result = ExperimentResult(variant_key=key, min_sim=0.01)
    for name, f1 in f1_by_name.items():
        result.names.append(
            NameResult(
                name=name,
                n_refs=10,
                n_entities=2,
                n_clusters=2,
                scores=ClusterScores(precision=f1, recall=f1, f1=f1),
            )
        )
    return result


class TestPairedBootstrap:
    def test_clear_win_is_significant(self):
        a = make_result("a", {f"n{i}": 0.9 for i in range(10)})
        b = make_result("b", {f"n{i}": 0.5 for i in range(10)})
        comparison = paired_bootstrap(a, b, seed=1)
        assert comparison.observed_difference == pytest.approx(0.4)
        assert comparison.significant
        assert comparison.p_sign_flip == 0.0
        assert comparison.ci_low > 0.3

    def test_tie_is_not_significant(self):
        scores_a = {f"n{i}": 0.7 + 0.02 * ((-1) ** i) for i in range(10)}
        scores_b = {f"n{i}": 0.7 + 0.02 * ((-1) ** (i + 1)) for i in range(10)}
        a = make_result("a", scores_a)
        b = make_result("b", scores_b)
        comparison = paired_bootstrap(a, b, seed=1)
        assert abs(comparison.observed_difference) < 0.01
        assert not comparison.significant

    def test_negative_difference_direction(self):
        a = make_result("a", {f"n{i}": 0.4 for i in range(6)})
        b = make_result("b", {f"n{i}": 0.8 for i in range(6)})
        comparison = paired_bootstrap(a, b, seed=2)
        assert comparison.observed_difference < 0
        assert comparison.ci_high < 0

    def test_mismatched_names_rejected(self):
        a = make_result("a", {"x": 0.5})
        b = make_result("b", {"y": 0.5})
        with pytest.raises(ValueError):
            paired_bootstrap(a, b)

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(make_result("a", {}), make_result("b", {}))

    def test_str_rendering(self):
        a = make_result("a", {"x": 0.9, "y": 0.8})
        b = make_result("b", {"x": 0.5, "y": 0.6})
        text = str(paired_bootstrap(a, b, seed=0))
        assert "a - b:" in text
        assert "sign-flip" in text

    def test_other_metric(self):
        a = make_result("a", {"x": 0.9, "y": 0.9})
        b = make_result("b", {"x": 0.5, "y": 0.5})
        comparison = paired_bootstrap(a, b, metric="precision", seed=0)
        assert comparison.observed_difference == pytest.approx(0.4)
