import pytest

from repro.eval.experiment import run_variant, prepare_names
from repro.eval.persistence import (
    experiment_result_from_dict,
    experiment_result_to_dict,
    load_experiment_results,
    save_experiment_results,
)
from repro.eval.visualize import cluster_context, render_clusters_context
from repro.core.variants import variant_by_key


@pytest.fixture(scope="module")
def kumar_resolution(fitted):
    return fitted.resolve("Rakesh Kumar")


class TestClusterContext:
    def test_context_has_coauthors_and_years(self, fitted, small_db, kumar_resolution):
        db, _ = small_db
        context = cluster_context(db, kumar_resolution, kumar_resolution.clusters[0])
        assert context["top_coauthors"]
        name, count = context["top_coauthors"][0]
        assert isinstance(name, str) and count >= 1
        assert context["year_span"] is None or context["year_span"][0] <= context["year_span"][1]

    def test_clusters_have_distinct_top_collaborators(self, fitted, small_db):
        db, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        if resolution.n_clusters < 2:
            pytest.skip("resolution merged everything")
        a = cluster_context(db, resolution, resolution.clusters[0])
        b = cluster_context(db, resolution, resolution.clusters[1])
        top_a = {n for n, _ in a["top_coauthors"]}
        top_b = {n for n, _ in b["top_coauthors"]}
        assert top_a != top_b  # different people, different circles

    def test_render_context_text(self, fitted, small_db, kumar_resolution):
        db, truth = small_db
        text = render_clusters_context(kumar_resolution, truth, db)
        assert "frequent collaborators" in text
        assert "Rakesh Kumar" in text


class TestPersistence:
    @pytest.fixture()
    def results(self, fitted, small_db):
        _, truth = small_db
        preps = prepare_names(fitted, ["Rakesh Kumar", "Jim Smith"])
        return {
            "distinct": run_variant(
                fitted, preps, truth, variant_by_key("distinct"), 0.006
            )
        }

    def test_round_trip_dict(self, results):
        payload = experiment_result_to_dict(results["distinct"])
        restored = experiment_result_from_dict(payload)
        assert restored.variant_key == "distinct"
        assert restored.avg_f1 == pytest.approx(results["distinct"].avg_f1)
        assert len(restored.names) == 2

    def test_round_trip_file(self, results, tmp_path):
        path = tmp_path / "results.json"
        save_experiment_results(results, path)
        loaded = load_experiment_results(path)
        assert set(loaded) == {"distinct"}
        original = results["distinct"].names[0]
        restored = loaded["distinct"].names[0]
        assert restored.name == original.name
        assert restored.scores.f1 == pytest.approx(original.scores.f1)
        assert restored.scores.tp == original.scores.tp

    def test_missing_optional_fields_default(self):
        payload = {
            "variant_key": "x",
            "min_sim": 0.1,
            "names": [
                {
                    "name": "A",
                    "n_refs": 2,
                    "n_entities": 1,
                    "n_clusters": 1,
                    "precision": 1.0,
                    "recall": 1.0,
                    "f1": 1.0,
                }
            ],
        }
        restored = experiment_result_from_dict(payload)
        assert restored.names[0].scores.accuracy == 0.0
