"""Parallel per-name execution must be indistinguishable from serial.

The acceptance bar is byte-identical serialized results: ``--workers N``
may only change wall-clock time, never a single byte of the
:class:`~repro.eval.experiment.ExperimentResult` JSON.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.variants import variant_by_key
from repro.errors import DeadlineExceeded
from repro.eval.persistence import experiment_result_to_dict
from repro.eval.runner import run_resilient
from repro.ml.calibration import calibrate_min_sim
from repro.obs import disable_tracing, enable_tracing
from repro.perf import SharedPayload, active_segments
from repro.resilience import Deadline, ErrorCollector, FaultPlan, fault_plan


@pytest.fixture(scope="module")
def names(small_world):
    return small_world.ambiguous_names


def _result_bytes(outcome) -> str:
    return json.dumps(experiment_result_to_dict(outcome.result), sort_keys=True)


class TestParallelExperiment:
    def test_workers_4_byte_identical_to_serial(self, fitted, small_db, names):
        _, truth = small_db
        variant = variant_by_key("distinct")
        min_sim = fitted.config.min_sim
        serial = run_resilient(fitted, truth, names, variant, min_sim)
        parallel = run_resilient(
            fitted, truth, names, variant, min_sim, workers=4
        )
        assert _result_bytes(serial) == _result_bytes(parallel)
        assert not parallel.interrupted
        assert parallel.complete

    def test_worker_failure_follows_skip_policy(self, fitted, small_db, names):
        _, truth = small_db
        variant = variant_by_key("distinct")
        plan = FaultPlan()
        plan.fail_at("profile", item=names[0])
        collector = ErrorCollector()
        with fault_plan(plan):
            outcome = run_resilient(
                fitted,
                truth,
                names,
                variant,
                fitted.config.min_sim,
                policy="collect",
                collector=collector,
                workers=2,
            )
        assert len(collector) == 1
        assert collector.to_dicts()[0]["item"] == names[0]
        scored = [r.name for r in outcome.result.names]
        assert scored == names[1:]

    def test_rejects_nonpositive_workers(self, fitted, small_db, names):
        _, truth = small_db
        with pytest.raises(ValueError):
            run_resilient(
                fitted,
                truth,
                names,
                variant_by_key("distinct"),
                fitted.config.min_sim,
                workers=0,
            )


class TestParallelTracing:
    @pytest.fixture(autouse=True)
    def clean_tracer(self):
        disable_tracing()
        yield
        disable_tracing()

    def test_worker_spans_grafted_and_results_unchanged(
        self, fitted, small_db, names
    ):
        _, truth = small_db
        variant = variant_by_key("distinct")
        min_sim = fitted.config.min_sim
        serial = run_resilient(fitted, truth, names, variant, min_sim)

        tracer = enable_tracing()
        parallel = run_resilient(
            fitted, truth, names, variant, min_sim, workers=4
        )
        assert _result_bytes(serial) == _result_bytes(parallel)

        (root,) = [r for r in tracer.roots if r.name == "experiment.resilient"]
        grafted = [c for c in root.children if "worker" in c.attrs]
        assert grafted, "no worker subtrees landed in the parent trace"
        assert {sp.attrs["worker"] for sp in grafted} <= set(range(4))
        assert all(sp.attrs["worker_pid"] > 0 for sp in grafted)
        # The subtrees are the real per-name pipeline spans, not stubs.
        prepared = [sp for sp in grafted if sp.find("resolve.prepare")]
        assert len(prepared) == len(names)
        traced_names = {
            sp.find("resolve.prepare").attrs["name"] for sp in prepared
        }
        assert traced_names == set(names)


class TestParallelCalibration:
    def test_workers_match_serial(self, fitted):
        serial = calibrate_min_sim(fitted, n_names=3, members=2, seed=5)
        parallel = calibrate_min_sim(fitted, n_names=3, members=2, seed=5, workers=2)
        assert serial.f1_by_min_sim == parallel.f1_by_min_sim
        assert serial.best_min_sim == parallel.best_min_sim
        assert parallel.n_scored == serial.n_scored

    def test_deadline_tail_releases_shared_payload(self, fitted, monkeypatch):
        """Regression: a deadline expiring before the first result is
        consumed leaves the parallel map's generator never-started, so
        closing it skips its ``finally`` — calibrate's own finally must
        release the shm segment it wrapped, or the segment leaks."""
        monkeypatch.setattr(
            fitted, "config", replace(fitted.config, shared_memory=True)
        )
        handles = []
        real_wrap = SharedPayload.wrap.__func__

        def spying_wrap(cls, payload):
            handle = real_wrap(cls, payload)
            handles.append(handle)
            return handle

        monkeypatch.setattr(
            SharedPayload, "wrap", classmethod(spying_wrap)
        )
        ticks = [0.0]

        def clock():
            ticks[0] += 5.0
            return ticks[0]

        with pytest.raises(DeadlineExceeded):
            calibrate_min_sim(
                fitted,
                n_names=2,
                members=2,
                seed=5,
                workers=2,
                deadline=Deadline(1.0, clock=clock),
            )
        # The wrap really happened, and its segment is gone again.
        assert len(handles) == 1
        assert handles[0].segment_name not in active_segments()
