import pytest

from repro.core.variants import FIG4_VARIANTS, variant_by_key
from repro.eval.experiment import (
    prepare_names,
    run_variant,
    score_resolution,
    sweep_min_sim,
)
from repro.eval.reporting import format_bar_chart, format_table
from repro.eval.visualize import render_clusters_dot, render_clusters_text

NAMES = ["Wei Wang", "Rakesh Kumar", "Jim Smith"]


@pytest.fixture(scope="module")
def preps(fitted):
    return prepare_names(fitted, NAMES)


class TestExperiment:
    def test_run_variant_scores_every_name(self, fitted, small_db, preps):
        _, truth = small_db
        result = run_variant(
            fitted, preps, truth, variant_by_key("distinct"), min_sim=0.006
        )
        assert sorted(r.name for r in result.names) == sorted(NAMES)
        assert 0.0 <= result.avg_f1 <= 1.0
        assert result.min_sim == 0.006

    def test_score_resolution_counts(self, fitted, small_db):
        _, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        result = score_resolution(resolution, truth)
        assert result.n_refs == 11
        assert result.n_entities == 2
        assert result.n_clusters == resolution.n_clusters

    def test_sweep_picks_best_accuracy(self, fitted, small_db, preps):
        _, truth = small_db
        grid = (1e-4, 0.006, 0.5)
        best, runs = sweep_min_sim(
            fitted, preps, truth, variant_by_key("sup_resem"), grid
        )
        assert len(runs) == len(grid)
        assert best.avg_accuracy == max(r.avg_accuracy for r in runs)

    def test_distinct_beats_unsupervised_on_fixture(self, fitted, small_db, preps):
        _, truth = small_db
        grid = (1e-4, 1e-3, 0.006, 0.03, 0.1)
        distinct_best, _ = sweep_min_sim(
            fitted, preps, truth, variant_by_key("distinct"), grid
        )
        unsup_best, _ = sweep_min_sim(
            fitted, preps, truth, variant_by_key("unsup_combined"), grid
        )
        assert distinct_best.avg_f1 >= unsup_best.avg_f1 - 1e-9

    def test_empty_experiment_result_means(self, fitted, small_db):
        _, truth = small_db
        result = run_variant(fitted, {}, truth, variant_by_key("distinct"), 0.01)
        assert result.avg_f1 == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "f1"], [["Wei Wang", 0.9266], ["Bin Yu", 1.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "f1" in lines[1]
        assert "0.927" in text
        assert len({len(l) for l in lines[2:3]}) == 1

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_bar_chart(self):
        text = format_bar_chart([("DISTINCT", 0.9), ("baseline", 0.45)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 9
        assert lines[1].count("#") == 5 if "4" not in lines[1] else True
        assert "0.900" in lines[0]

    def test_bar_chart_clamps_values(self):
        text = format_bar_chart([("x", 1.5)], width=10)
        assert text.count("#") == 10


class TestVisualize:
    def test_text_rendering_mentions_errors(self, fitted, small_db):
        _, truth = small_db
        resolution = fitted.resolve("Jim Smith", min_sim=0.5)  # force splits
        text = render_clusters_text(resolution, truth)
        assert "Jim Smith" in text
        assert "predicted clusters" in text
        assert "cluster" in text

    def test_text_rendering_perfect_case(self, fitted, small_db):
        _, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        text = render_clusters_text(resolution, truth)
        assert "Rakesh Kumar" in text

    def test_dot_output_well_formed(self, fitted, small_db):
        _, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        dot = render_clusters_dot(resolution, truth)
        assert dot.startswith("graph distinct {")
        assert dot.rstrip().endswith("}")
        assert dot.count("subgraph") == resolution.n_clusters
        for row in resolution.rows:
            assert f"r{row} " in dot
