"""Coverage for the reporting renderers beyond the smoke checks."""

import pytest

from repro.eval.reporting import format_bar_chart, format_table, format_xy_chart


class TestFormatTable:
    def test_custom_float_format(self):
        text = format_table(["x"], [[0.123456]], float_format="{:+.5f}")
        assert "+0.12346" in text

    def test_mixed_types_render(self):
        text = format_table(
            ["name", "count", "score", "note"],
            [["Wei Wang", 14, 0.5, None]],
        )
        assert "Wei Wang" in text
        assert "14" in text
        assert "None" in text

    def test_column_alignment(self):
        text = format_table(
            ["a", "bbbb"],
            [["xxxxxxx", 1], ["y", 22]],
        )
        lines = text.splitlines()
        # Header separator line matches column widths.
        assert lines[1].startswith("-" * 7)
        # All data rows start their second column at the same offset.
        col2_positions = {line.index(val) for line, val in zip(lines[2:], ["1", "22"])}
        assert len(col2_positions) == 1

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_no_title_by_default(self):
        text = format_table(["a"], [[1]])
        assert text.splitlines()[0].startswith("a")


class TestFormatBarChart:
    def test_empty_items(self):
        assert format_bar_chart([]) == ""

    def test_zero_value_has_no_bar(self):
        text = format_bar_chart([("zero", 0.0)], width=20)
        assert "#" not in text

    def test_full_value_fills_width(self):
        text = format_bar_chart([("one", 1.0)], width=20)
        assert "#" * 20 in text

    def test_labels_padded_to_common_width(self):
        text = format_bar_chart([("a", 0.5), ("longer label", 0.5)])
        lines = text.splitlines()
        assert lines[0].index("0.500") == lines[1].index("0.500")


class TestFormatXYChart:
    def test_height_and_width_respected(self):
        points = [(float(i), i / 10) for i in range(10)]
        text = format_xy_chart(points, width=30, height=6)
        grid_lines = [l for l in text.splitlines() if l.startswith("|")]
        assert len(grid_lines) == 6
        assert all(len(l) <= 31 for l in grid_lines)

    def test_monotone_points_render_monotone(self):
        points = [(1.0, 0.0), (2.0, 0.5), (3.0, 1.0)]
        text = format_xy_chart(points, width=9, height=3)
        grid = [l[1:] for l in text.splitlines() if l.startswith("|")]
        # Highest y lands on the top row, lowest on the bottom row.
        assert "*" in grid[0] and "*" in grid[-1]
        assert grid[0].index("*") > grid[-1].index("*")

    def test_constant_y_single_row(self):
        points = [(1.0, 0.4), (2.0, 0.4)]
        text = format_xy_chart(points)
        grid = [l for l in text.splitlines() if l.startswith("|")]
        rows_with_points = [l for l in grid if "*" in l]
        assert len(rows_with_points) == 1
