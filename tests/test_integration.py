"""Cross-module integration tests: determinism, model reuse, alternate
schemas, end-to-end invariants."""

import numpy as np
import pytest

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.world import world_to_database
from repro.eval.metrics import pairwise_scores
from repro.ml.model import PathWeightModel


SPECS = [AmbiguousNameSpec("Wei Wang", (8, 5))]
GEN = GeneratorConfig(
    seed=23,
    n_communities=6,
    regular_entities_per_community=20,
    rare_entities=50,
    background_papers_per_community_year=4,
)
CFG = DistinctConfig(n_positive=200, n_negative=200, svm_C=10.0, min_sim=0.012)


@pytest.fixture(scope="module")
def pipeline():
    world = generate_world(GEN, SPECS)
    db, truth = world_to_database(world)
    distinct = Distinct(CFG).fit(db)
    return world, db, truth, distinct


class TestDeterminism:
    def test_same_seed_same_models(self, pipeline):
        world, db, truth, distinct = pipeline
        again = Distinct(CFG).fit(db)
        assert again.resem_model_.weights == pytest.approx(
            distinct.resem_model_.weights
        )
        assert again.walk_model_.weights == pytest.approx(distinct.walk_model_.weights)

    def test_same_seed_same_clusters(self, pipeline):
        world, db, truth, distinct = pipeline
        a = distinct.resolve("Wei Wang")
        b = Distinct(CFG).fit(db).resolve("Wei Wang")
        assert a.clusters == b.clusters

    def test_different_training_seed_similar_quality(self, pipeline):
        world, db, truth, distinct = pipeline
        other = Distinct(CFG.with_options(seed=99)).fit(db)
        gold = list(truth.clusters_for("Wei Wang").values())
        f_a = pairwise_scores(distinct.resolve("Wei Wang").clusters, gold).f1
        f_b = pairwise_scores(other.resolve("Wei Wang").clusters, gold).f1
        assert abs(f_a - f_b) < 0.35  # robust to the training sample


class TestModelReuse:
    def test_save_load_from_models_identical_resolution(self, pipeline, tmp_path):
        world, db, truth, distinct = pipeline
        distinct.resem_model_.save(tmp_path / "r.json")
        distinct.walk_model_.save(tmp_path / "w.json")

        fresh = Distinct.from_models(
            db,
            PathWeightModel.load(tmp_path / "r.json"),
            PathWeightModel.load(tmp_path / "w.json"),
            CFG,
        )
        assert fresh.resolve("Wei Wang").clusters == distinct.resolve("Wei Wang").clusters

    def test_models_transfer_to_fresh_world_same_schema(self, pipeline):
        world, db, truth, distinct = pipeline
        other_world = generate_world(
            GeneratorConfig(**{**GEN.__dict__, "seed": 31}), SPECS
        )
        other_db, other_truth = world_to_database(other_world)
        transferred = Distinct.from_models(
            other_db, distinct.resem_model_, distinct.walk_model_, CFG
        )
        resolution = transferred.resolve("Wei Wang")
        gold = list(other_truth.clusters_for("Wei Wang").values())
        assert pairwise_scores(resolution.clusters, gold).f1 > 0.6

    def test_from_models_rejects_resolution_before_alignment_errors(self, pipeline):
        world, db, truth, distinct = pipeline
        # Aligning to a schema where signatures do not overlap leaves zero
        # weights -> everything unclustered at any positive threshold.
        from repro.data.music import generate_music_database, music_distinct_config

        music_db, _ = generate_music_database()
        transferred = Distinct.from_models(
            music_db,
            distinct.resem_model_,
            distinct.walk_model_,
            music_distinct_config(),
        )
        resolution = transferred.resolve("The Forgotten")
        # No DBLP path exists on the music schema: all weights align to 0.
        assert all(w == 0.0 for w in transferred.resem_model_.weights)
        assert resolution.n_clusters == len(resolution.rows)


class TestEndToEndInvariants:
    def test_resolution_is_a_partition(self, pipeline):
        world, db, truth, distinct = pipeline
        resolution = distinct.resolve("Wei Wang")
        seen = set()
        for cluster in resolution.clusters:
            assert not seen & cluster
            seen |= cluster
        assert seen == set(truth.rows_of_name["Wei Wang"])

    def test_min_sim_extremes(self, pipeline):
        world, db, truth, distinct = pipeline
        prep = distinct.prepare("Wei Wang")
        merged = distinct.cluster_prepared(prep, min_sim=0.0)
        split = distinct.cluster_prepared(prep, min_sim=1e9)
        assert merged.n_clusters < split.n_clusters
        assert split.n_clusters == len(prep.rows)

    def test_pair_matrices_rows_align(self, pipeline):
        world, db, truth, distinct = pipeline
        resolution = distinct.resolve("Wei Wang")
        n = len(resolution.rows)
        assert resolution.resem_matrix.shape == (n, n)
        assert resolution.walk_matrix.shape == (n, n)

    def test_citation_schema_end_to_end(self):
        config = GeneratorConfig(**{**GEN.__dict__, "with_citations": True})
        world = generate_world(config, SPECS)
        db, truth = world_to_database(world, with_citations=True)
        distinct = Distinct(CFG).fit(db)
        assert any("Cites" in p.describe() for p in distinct.paths_)
        resolution = distinct.resolve("Wei Wang")
        gold = list(truth.clusters_for("Wei Wang").values())
        assert pairwise_scores(resolution.clusters, gold).f1 > 0.6

    def test_fit_twice_overwrites_cleanly(self, pipeline):
        world, db, truth, distinct = pipeline
        first_weights = list(distinct.resem_model_.weights)
        distinct.fit(db)
        assert distinct.resem_model_.weights == pytest.approx(first_weights)
