"""Smoke tests for the example scripts.

Each example must at least import cleanly and expose ``main``. The fastest
one (the music store) is executed end to end; the slower ones are covered
indirectly — their building blocks run in the integration tests and the
benchmark suite executes the same pipelines.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert {
            "quickstart.py",
            "dblp_case_study.py",
            "music_store.py",
            "model_inspection.py",
            "discovery_pipeline.py",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_importable_with_main(self, path):
        module = load_module(path)
        assert callable(module.main)

    def test_music_store_runs_end_to_end(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "music_store.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "distinct bands" in result.stdout
        assert "p=1.000" in result.stdout or "f=" in result.stdout
