"""A tiny hand-built DBLP database with hand-computable propagation numbers.

Modeled on Fig 1 of the paper: one ambiguous name "Wei Wang" shared by two
real people, each with a disjoint coauthor circle.

Authors:   a0 "Wei Wang" (ambiguous), a1 "Jiong Yang", a2 "Jiawei Han",
           a3 "Xuemin Lin", a4 "Hongjun Lu"
Papers:    p0 (VLDB 1997)  authors: WW, Jiong Yang, Jiawei Han
           p1 (ICDE 2002)  authors: WW, Xuemin Lin, Hongjun Lu
           p2 (VLDB 2002)  authors: WW, Jiong Yang
           p3 (ICDE 2002)  authors: WW, Xuemin Lin
Ground truth: Publish rows 0 and 6 belong to Wei Wang #1 (UNC);
              rows 3 and 8 belong to Wei Wang #2 (UNSW).

Publish row ids (insertion order):
    0:(p0,a0) 1:(p0,a1) 2:(p0,a2) 3:(p1,a0) 4:(p1,a3) 5:(p1,a4)
    6:(p2,a0) 7:(p2,a1) 8:(p3,a0) 9:(p3,a3)
"""

from __future__ import annotations

from repro.data.dblp_schema import new_dblp_database, prepare_dblp_database
from repro.reldb.database import Database

#: Publish row ids of the four "Wei Wang" references.
WW_REFS = [0, 3, 6, 8]
#: ground truth entity per reference row id
WW_TRUTH = {0: "ww-unc", 6: "ww-unc", 3: "ww-unsw", 8: "ww-unsw"}
#: Authors row id of the shared "Wei Wang" tuple
WW_AUTHOR_ROW = 0


def build_minidb(prepared: bool = True) -> Database:
    db = new_dblp_database()
    db.insert_many(
        "Authors",
        [
            (0, "Wei Wang"),
            (1, "Jiong Yang"),
            (2, "Jiawei Han"),
            (3, "Xuemin Lin"),
            (4, "Hongjun Lu"),
        ],
    )
    db.insert_many(
        "Conferences",
        [(0, "VLDB", "VLDB Endowment"), (1, "ICDE", "IEEE")],
    )
    db.insert_many(
        "Proceedings",
        [
            (0, 0, 1997, "Athens"),
            (1, 1, 2002, "San Jose"),
            (2, 0, 2002, "Hong Kong"),
        ],
    )
    db.insert_many(
        "Publications",
        [
            (0, "STING", 0),
            (1, "Clustering XML", 1),
            (2, "Sequential patterns", 2),
            (3, "Skyline queries", 1),
        ],
    )
    db.insert_many(
        "Publish",
        [
            (0, 0), (0, 1), (0, 2),
            (1, 0), (1, 3), (1, 4),
            (2, 0), (2, 1),
            (3, 0), (3, 3),
        ],
    )
    db.check_integrity()
    if prepared:
        prepare_dblp_database(db)
    return db
