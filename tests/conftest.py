"""Shared fixtures: a small synthetic world and a fitted pipeline.

The full Table-1 world takes ~60 s to fit (auto-C cross-validation), so the
test suite uses a reduced world with three ambiguous names and a fixed SVM
cost. Session-scoped: built once per test run.
"""

from __future__ import annotations

import pytest

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.world import world_to_database

SMALL_SPECS = [
    AmbiguousNameSpec("Wei Wang", (12, 8, 3)),
    AmbiguousNameSpec("Rakesh Kumar", (6, 5)),
    AmbiguousNameSpec("Jim Smith", (4, 3, 2), multi_era=(0,), bridged=(0,)),
]

SMALL_CONFIG = GeneratorConfig(
    seed=11,
    n_communities=8,
    regular_entities_per_community=25,
    rare_entities=60,
    background_papers_per_community_year=5,
)


@pytest.fixture(scope="session")
def small_world():
    return generate_world(SMALL_CONFIG, SMALL_SPECS)


@pytest.fixture(scope="session")
def small_db(small_world):
    db, truth = world_to_database(small_world)
    return db, truth


@pytest.fixture(scope="session")
def fitted(small_db):
    db, truth = small_db
    config = DistinctConfig(n_positive=300, n_negative=300, svm_C=10.0)
    return Distinct(config).fit(db)
