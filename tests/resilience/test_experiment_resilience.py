"""Acceptance scenarios: checkpoint/resume and error policies end to end.

These are the ISSUE's acceptance criteria: a run interrupted after K of N
names resumes to a byte-identical ExperimentResult JSON, and a run with one
poisoned name under ``collect`` finishes, reports exactly that name, and
scores the rest.
"""

import json

import pytest

from repro.core.variants import variant_by_key
from repro.errors import CheckpointError
from repro.eval.persistence import experiment_result_to_dict
from repro.eval.runner import experiment_checkpoint, run_resilient
from repro.ml.calibration import calibrate_min_sim, calibration_checkpoint
from repro.resilience import ErrorCollector, FaultInjected, FaultPlan, Deadline, fault_plan

NAMES = ["Wei Wang", "Rakesh Kumar", "Jim Smith"]
MIN_SIM = 0.006
VARIANT = variant_by_key("distinct")


@pytest.fixture(scope="module")
def baseline(fitted, small_db):
    """An uninterrupted run and its canonical JSON serialization."""
    _, truth = small_db
    outcome = run_resilient(fitted, truth, NAMES, VARIANT, MIN_SIM)
    assert outcome.complete and not outcome.errors
    return outcome.result, json.dumps(
        experiment_result_to_dict(outcome.result), sort_keys=True
    )


class TestCrashAndResume:
    def test_resume_after_midrun_crash_is_byte_identical(
        self, fitted, small_db, tmp_path, baseline
    ):
        _, truth = small_db
        _, baseline_json = baseline
        ckpt_path = tmp_path / "run.ckpt.json"

        def checkpoint():
            return experiment_checkpoint(ckpt_path, NAMES, VARIANT.key, MIN_SIM)

        # Crash while profiling the third name (after 2 of 3 completed).
        with fault_plan(FaultPlan().fail_at("profile", item=NAMES[2])):
            with pytest.raises(FaultInjected):
                run_resilient(
                    fitted, truth, NAMES, VARIANT, MIN_SIM,
                    checkpoint=checkpoint(),
                )

        saved = json.loads(ckpt_path.read_text())
        assert [e["name"] for e in saved["completed"]] == NAMES[:2]
        assert saved["complete"] is False

        # Resume: the two completed names must come from the checkpoint —
        # recomputing them would trip these faults.
        replay_guard = FaultPlan()
        replay_guard.fail_at("profile", item=NAMES[0])
        replay_guard.fail_at("profile", item=NAMES[1])
        with fault_plan(replay_guard):
            outcome = run_resilient(
                fitted, truth, NAMES, VARIANT, MIN_SIM,
                checkpoint=checkpoint(),
            )

        assert outcome.complete
        assert not replay_guard.triggered
        resumed_json = json.dumps(
            experiment_result_to_dict(outcome.result), sort_keys=True
        )
        assert resumed_json == baseline_json
        assert json.loads(ckpt_path.read_text())["complete"] is True

    def test_checkpoint_from_different_run_is_rejected(
        self, fitted, small_db, tmp_path
    ):
        _, truth = small_db
        ckpt_path = tmp_path / "run.ckpt.json"
        run_resilient(
            fitted, truth, NAMES, VARIANT, MIN_SIM,
            checkpoint=experiment_checkpoint(ckpt_path, NAMES, VARIANT.key, MIN_SIM),
        )
        with pytest.raises(CheckpointError, match="min_sim"):
            run_resilient(
                fitted, truth, NAMES, VARIANT, 0.5,
                checkpoint=experiment_checkpoint(ckpt_path, NAMES, VARIANT.key, 0.5),
            )


class TestPoisonedName:
    def test_collect_scores_the_rest_and_reports_exactly_the_poisoned_name(
        self, fitted, small_db, baseline
    ):
        _, truth = small_db
        baseline_result, _ = baseline
        poisoned = NAMES[1]
        with fault_plan(FaultPlan().fail_at("profile", item=poisoned, times=-1)):
            outcome = run_resilient(
                fitted, truth, NAMES, VARIANT, MIN_SIM, policy="collect"
            )

        assert outcome.errors.items() == [poisoned]
        assert [r.name for r in outcome.result.names] == [NAMES[0], NAMES[2]]
        # The surviving names score exactly as in the clean run.
        by_name = {r.name: r for r in baseline_result.names}
        for r in outcome.result.names:
            assert r.scores == by_name[r.name].scores

    def test_skip_policy_drops_silently(self, fitted, small_db):
        _, truth = small_db
        with fault_plan(FaultPlan().fail_at("cluster", item=NAMES[0], times=-1)):
            outcome = run_resilient(
                fitted, truth, NAMES, VARIANT, MIN_SIM, policy="skip"
            )
        assert [r.name for r in outcome.result.names] == NAMES[1:]
        assert not outcome.errors

    def test_raise_policy_propagates(self, fitted, small_db):
        _, truth = small_db
        with fault_plan(FaultPlan().fail_at("cluster", item=NAMES[0])):
            with pytest.raises(FaultInjected):
                run_resilient(fitted, truth, NAMES, VARIANT, MIN_SIM)


class TestDeadline:
    def test_expired_deadline_interrupts_gracefully(
        self, fitted, small_db, tmp_path
    ):
        _, truth = small_db
        ckpt_path = tmp_path / "run.ckpt.json"
        # Clock: one name's worth of budget, then far past the deadline.
        ticks = iter([0.0] + [100.0] * 100)
        deadline = Deadline(1.0, clock=lambda: next(ticks))
        outcome = run_resilient(
            fitted, truth, NAMES, VARIANT, MIN_SIM,
            checkpoint=experiment_checkpoint(ckpt_path, NAMES, VARIANT.key, MIN_SIM),
            deadline=deadline,
        )
        assert outcome.interrupted and outcome.n_completed == 0
        # The checkpoint exists and a later unconstrained run resumes it.
        resumed = run_resilient(
            fitted, truth, NAMES, VARIANT, MIN_SIM,
            checkpoint=experiment_checkpoint(ckpt_path, NAMES, VARIANT.key, MIN_SIM),
        )
        assert resumed.complete and resumed.n_completed == len(NAMES)


class TestCalibrationResilience:
    def test_poisoned_synthetic_name_collected(self, fitted):
        baseline = calibrate_min_sim(fitted, n_names=4, members=2, seed=3)
        poisoned = "+".join(baseline.details[1].member_names)
        collector = ErrorCollector()
        with fault_plan(FaultPlan().fail_at("profile", item=poisoned, times=-1)):
            degraded = calibrate_min_sim(
                fitted, n_names=4, members=2, seed=3,
                policy="collect", collector=collector,
            )
        assert collector.items(stage="calibration.name") == [poisoned]
        assert degraded.n_scored == 3
        assert set(degraded.f1_by_min_sim) == set(baseline.f1_by_min_sim)

    def test_checkpoint_resume_reproduces_f1_table(self, fitted, tmp_path):
        ckpt_path = tmp_path / "cal.ckpt.json"

        def checkpoint():
            return calibration_checkpoint(ckpt_path, n_names=4, members=2, seed=3)

        baseline = calibrate_min_sim(fitted, n_names=4, members=2, seed=3)
        third = "+".join(baseline.details[2].member_names)
        with fault_plan(FaultPlan().fail_at("profile", item=third)):
            with pytest.raises(FaultInjected):
                calibrate_min_sim(
                    fitted, n_names=4, members=2, seed=3, checkpoint=checkpoint()
                )
        assert len(json.loads(ckpt_path.read_text())["completed"]) == 2

        resumed = calibrate_min_sim(
            fitted, n_names=4, members=2, seed=3, checkpoint=checkpoint()
        )
        assert resumed.f1_by_min_sim == baseline.f1_by_min_sim
        assert resumed.best_min_sim == baseline.best_min_sim
        assert json.loads(ckpt_path.read_text())["complete"] is True
