"""Error policies: Policy, ErrorCollector, and the guard context manager."""

import pytest

from repro.errors import DeadlineExceeded
from repro.obs import get_metrics
from repro.resilience import ErrorCollector, Policy, guard


class TestPolicy:
    def test_coerce_accepts_members_and_strings(self):
        assert Policy.coerce(Policy.SKIP) is Policy.SKIP
        assert Policy.coerce("skip") is Policy.SKIP
        assert Policy.coerce("COLLECT") is Policy.COLLECT
        assert Policy.coerce("raise") is Policy.RAISE

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown error policy"):
            Policy.coerce("explode")


class TestErrorCollector:
    def test_records_triples_in_order(self):
        collector = ErrorCollector()
        collector.record("ingest", "rec-1", ValueError("bad year"))
        collector.record("score", "Wei Wang", RuntimeError("boom"))
        assert len(collector) == 2
        assert collector.items() == ["rec-1", "Wei Wang"]
        assert collector.items(stage="score") == ["Wei Wang"]
        first = collector.records[0]
        assert (first.stage, first.item) == ("ingest", "rec-1")
        assert isinstance(first.error, ValueError)

    def test_to_dicts_and_summary(self):
        collector = ErrorCollector()
        assert not collector
        assert collector.summary() == "no errors collected"
        collector.record("score", "X", KeyError("k"))
        (entry,) = collector.to_dicts()
        assert entry == {
            "stage": "score", "item": "X",
            "error_type": "KeyError", "message": "'k'",
        }
        assert "1 error(s) collected" in collector.summary()
        assert "[score] X: KeyError" in collector.summary()


class TestGuard:
    def test_raise_policy_propagates(self):
        with pytest.raises(ValueError):
            with guard("stage", "item", Policy.RAISE):
                raise ValueError("x")

    def test_skip_policy_suppresses_without_recording(self):
        collector = ErrorCollector()
        with guard("stage", "item", Policy.SKIP, collector):
            raise ValueError("x")
        assert not collector

    def test_collect_policy_records(self):
        collector = ErrorCollector()
        with guard("stage", "item", "collect", collector):
            raise ValueError("x")
        assert collector.items() == ["item"]

    def test_deadline_exceeded_never_swallowed(self):
        for policy in Policy:
            with pytest.raises(DeadlineExceeded):
                with guard("stage", "item", policy):
                    raise DeadlineExceeded("out of time")

    def test_keyboard_interrupt_never_swallowed(self):
        with pytest.raises(KeyboardInterrupt):
            with guard("stage", "item", Policy.COLLECT, ErrorCollector()):
                raise KeyboardInterrupt()

    def test_metrics_flow_into_obs_registry(self):
        skipped = get_metrics().counter("resilience.items_skipped")
        collected = get_metrics().counter("resilience.errors_collected")
        s0, c0 = skipped.value, collected.value
        with guard("stage", "a", Policy.SKIP):
            raise ValueError("x")
        with guard("stage", "b", Policy.COLLECT, ErrorCollector()):
            raise ValueError("y")
        assert skipped.value == s0 + 2
        assert collected.value == c0 + 1
