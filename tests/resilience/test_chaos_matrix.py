"""Chaos fault matrix: process kills × file corruption × backend failures.

Sweeps fault × site × policy and asserts the recovery invariants the
robustness layer promises:

- a SIGKILLed pool worker costs nothing: the run completes with results
  byte-identical to a serial run and ``perf.parallel.worker_deaths`` == 1;
- a name that kills its worker on every dispatch exhausts its re-dispatch
  budget and surfaces as a ``WorkerCrashed`` error under each ``--on-error``
  policy, exactly like an in-process failure;
- corrupted (truncated / bit-flipped) checkpoints are quarantined and the
  run restarts from nothing — never silently resumed;
- an injected ``MemoryError`` in a fast backend under
  ``degradation="fallback"`` yields scalar-identical results with the
  ``resilience.degraded.*`` counters incremented; under ``"strict"`` it
  propagates;
- a deadline-expired run leaves a resumable (``complete: false``)
  checkpoint, including after a worker-crash abort.

Set ``CHAOS_REPORT_DIR`` to collect per-scenario JSON reports (the CI
``chaos`` job uploads them as artifacts).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.distinct import Distinct
from repro.core.variants import variant_by_key
from repro.eval.persistence import experiment_result_to_dict
from repro.eval.runner import experiment_checkpoint, run_resilient
from repro.obs import get_metrics
from repro.perf import RemoteTaskError
from repro.resilience import (
    Deadline,
    ErrorCollector,
    FaultPlan,
    fault_plan,
    flip_byte,
    truncate_file,
)

NAMES = ["Wei Wang", "Rakesh Kumar", "Jim Smith"]
MIN_SIM = 0.006
VARIANT = variant_by_key("distinct")
WORKERS = int(os.environ.get("CHAOS_WORKERS", "4"))


def _counter(name: str) -> float:
    return get_metrics().counter(name).value


def _result_json(result) -> str:
    return json.dumps(experiment_result_to_dict(result), sort_keys=True)


def _report(scenario: str, payload: dict) -> None:
    """Drop a per-scenario JSON report for the CI artifact upload."""
    report_dir = os.environ.get("CHAOS_REPORT_DIR")
    if not report_dir:
        return
    out = Path(report_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{scenario}.json").write_text(json.dumps(payload, indent=2))


@pytest.fixture(scope="module")
def baseline(fitted, small_db):
    """The uninterrupted serial run every chaos scenario must reproduce."""
    _, truth = small_db
    outcome = run_resilient(fitted, truth, NAMES, VARIANT, MIN_SIM)
    assert outcome.complete and not outcome.errors
    return outcome.result, _result_json(outcome.result)


class TestWorkerSigkill:
    """Fault: SIGKILL a pool worker. Site: the per-name experiment loop."""

    def test_one_death_run_completes_byte_identical(
        self, fitted, small_db, tmp_path, baseline
    ):
        _, truth = small_db
        _, baseline_json = baseline
        deaths0 = _counter("perf.parallel.worker_deaths")
        plan = FaultPlan().kill_at(
            "profile", item=NAMES[1], once_path=tmp_path / "latch"
        )
        with fault_plan(plan):
            outcome = run_resilient(
                fitted, truth, NAMES, VARIANT, MIN_SIM, workers=WORKERS
            )
        deaths = _counter("perf.parallel.worker_deaths") - deaths0
        assert outcome.complete and not outcome.errors
        assert _result_json(outcome.result) == baseline_json
        assert deaths == 1
        _report("worker_sigkill_once", {
            "workers": WORKERS,
            "worker_deaths": deaths,
            "byte_identical": True,
        })

    def test_repeat_killer_collect_reports_it_and_scores_the_rest(
        self, fitted, small_db, baseline
    ):
        _, truth = small_db
        baseline_result, _ = baseline
        collector = ErrorCollector()
        with fault_plan(FaultPlan().kill_at("profile", item=NAMES[1])):
            outcome = run_resilient(
                fitted, truth, NAMES, VARIANT, MIN_SIM, workers=WORKERS,
                policy="collect", collector=collector,
            )
        assert collector.items() == [NAMES[1]]
        (record,) = collector.records
        assert "WorkerCrashed" in str(record.error)
        assert [r.name for r in outcome.result.names] == [NAMES[0], NAMES[2]]
        by_name = {r.name: r for r in baseline_result.names}
        for r in outcome.result.names:
            assert r.scores == by_name[r.name].scores
        _report("worker_sigkill_repeat_collect", {
            "workers": WORKERS,
            "failed": collector.items(),
            "scored": [r.name for r in outcome.result.names],
        })

    def test_repeat_killer_skip_drops_it(self, fitted, small_db):
        _, truth = small_db
        with fault_plan(FaultPlan().kill_at("profile", item=NAMES[1])):
            outcome = run_resilient(
                fitted, truth, NAMES, VARIANT, MIN_SIM, workers=WORKERS,
                policy="skip",
            )
        assert [r.name for r in outcome.result.names] == [NAMES[0], NAMES[2]]
        assert not outcome.errors

    def test_repeat_killer_raise_propagates_worker_crashed(
        self, fitted, small_db
    ):
        _, truth = small_db
        with fault_plan(FaultPlan().kill_at("profile", item=NAMES[1])):
            with pytest.raises(RemoteTaskError, match="WorkerCrashed"):
                run_resilient(
                    fitted, truth, NAMES, VARIANT, MIN_SIM, workers=WORKERS
                )

    def test_resume_after_crash_aborted_parallel_run(
        self, fitted, small_db, tmp_path, baseline
    ):
        """--resume after a SIGKILLed worker aborted the run (ISSUE
        satellite): the checkpoint holds the pre-crash progress and the
        resumed run reproduces the baseline byte-for-byte."""
        _, truth = small_db
        _, baseline_json = baseline
        ckpt_path = tmp_path / "run.ckpt.json"

        def checkpoint():
            return experiment_checkpoint(ckpt_path, NAMES, VARIANT.key, MIN_SIM)

        with fault_plan(FaultPlan().kill_at("profile", item=NAMES[1])):
            with pytest.raises(RemoteTaskError, match="WorkerCrashed"):
                run_resilient(
                    fitted, truth, NAMES, VARIANT, MIN_SIM, workers=WORKERS,
                    checkpoint=checkpoint(),
                )
        saved = json.loads(ckpt_path.read_text())
        assert saved["complete"] is False
        assert [e["name"] for e in saved["completed"]] == [NAMES[0]]

        resumed = run_resilient(
            fitted, truth, NAMES, VARIANT, MIN_SIM, workers=WORKERS,
            checkpoint=checkpoint(),
        )
        assert resumed.complete
        assert _result_json(resumed.result) == baseline_json
        assert json.loads(ckpt_path.read_text())["complete"] is True
        _report("resume_after_worker_crash", {
            "checkpointed_before_crash": [NAMES[0]],
            "resumed_byte_identical": True,
        })


@pytest.mark.parametrize(
    "corrupt",
    [
        pytest.param(
            lambda p: truncate_file(p, p.stat().st_size // 3), id="truncate"
        ),
        pytest.param(lambda p: flip_byte(p, -30), id="bitflip"),
    ],
)
class TestCheckpointCorruption:
    """Fault: torn write / bit rot. Site: the resume path of both loops."""

    def test_corrupt_checkpoint_quarantined_then_run_completes(
        self, fitted, small_db, tmp_path, baseline, corrupt
    ):
        _, truth = small_db
        _, baseline_json = baseline
        ckpt_path = tmp_path / "run.ckpt.json"

        def checkpoint():
            return experiment_checkpoint(ckpt_path, NAMES, VARIANT.key, MIN_SIM)

        run_resilient(
            fitted, truth, NAMES, VARIANT, MIN_SIM, checkpoint=checkpoint()
        )
        corrupt(ckpt_path)
        quarantined0 = _counter("checkpoint.corrupt_quarantined")
        resumed0 = _counter("checkpoint.items_resumed")

        outcome = run_resilient(
            fitted, truth, NAMES, VARIANT, MIN_SIM, checkpoint=checkpoint()
        )

        # Quarantined and reported — never silently resumed.
        assert _counter("checkpoint.corrupt_quarantined") - quarantined0 == 1
        assert _counter("checkpoint.items_resumed") == resumed0
        assert (tmp_path / "run.ckpt.json.corrupt").exists()
        # The rerun restarted from nothing and still reproduced the baseline.
        assert outcome.complete
        assert _result_json(outcome.result) == baseline_json
        fresh = json.loads(ckpt_path.read_text())
        assert fresh["complete"] is True and len(fresh["completed"]) == len(NAMES)


class TestBackendMemoryError:
    """Fault: MemoryError in a fast backend. Site: compute_pair_features."""

    def _vectorized(self, fitted, degradation: str) -> Distinct:
        config = fitted.config.with_options(
            similarity_backend="vectorized", degradation=degradation
        )
        return Distinct.from_models(
            fitted.db, fitted.resem_model_, fitted.walk_model_, config
        )

    def test_strict_propagates(self, fitted):
        strict = self._vectorized(fitted, "strict")
        with fault_plan(
            FaultPlan().fail_at("features.backend", exc=MemoryError("oom"))
        ):
            with pytest.raises(MemoryError):
                strict.resolve(NAMES[0])

    def test_fallback_yields_scalar_identical_results_and_counts(self, fitted):
        scalar = fitted.resolve(NAMES[0])
        fallback = self._vectorized(fitted, "fallback")
        degraded0 = _counter("resilience.degraded.features")
        pairs0 = _counter("resilience.degraded.pairs")
        with fault_plan(
            FaultPlan().fail_at("features.backend", exc=MemoryError("oom"))
        ) as plan:
            resolution = fallback.resolve(NAMES[0])
        assert plan.triggered  # the fast route really was attempted

        assert resolution.clusters == scalar.clusters
        # Scalar-identical, not just tolerance-close: the fallback reran
        # the reference path, so the arrays match exactly.
        np.testing.assert_array_equal(
            resolution.features.resemblance, scalar.features.resemblance
        )
        np.testing.assert_array_equal(
            resolution.features.walk, scalar.features.walk
        )
        assert resolution.features.degraded
        assert not scalar.features.degraded
        assert _counter("resilience.degraded.features") - degraded0 == 1
        n_pairs = len(resolution.features.pairs)
        assert _counter("resilience.degraded.pairs") - pairs0 == n_pairs
        _report("backend_memoryerror_fallback", {
            "name": NAMES[0],
            "scalar_identical": True,
            "degraded_pairs": n_pairs,
        })

    def test_fallback_is_policy_invisible_in_the_experiment_loop(
        self, fitted, small_db, baseline
    ):
        """A degraded batch is not an error: even under policy=raise the
        run completes, and scores match the scalar baseline exactly."""
        _, truth = small_db
        _, baseline_json = baseline
        fallback = self._vectorized(fitted, "fallback")
        with fault_plan(
            FaultPlan().fail_at("features.backend", times=-1, exc=MemoryError("oom"))
        ):
            outcome = run_resilient(
                fallback, truth, NAMES, VARIANT, MIN_SIM
            )
        assert outcome.complete and not outcome.errors
        assert _result_json(outcome.result) == baseline_json


class TestSharedMemoryCrash:
    """Fault: SIGKILL under shared-memory dispatch. Site: payload lifecycle.

    The respawned pool must re-attach the still-linked segment, results
    must stay byte-identical, and the segment must be unlinked exactly
    once when the map winds down — the autouse ``_no_leaked_shm_segments``
    fixture in conftest.py enforces the latter after every scenario here.
    """

    def _shared(self, fitted) -> Distinct:
        config = fitted.config.with_options(
            shared_memory=True, shard_strategy="cost"
        )
        return Distinct.from_models(
            fitted.db, fitted.resem_model_, fitted.walk_model_, config
        )

    def test_clean_shared_run_matches_baseline(self, fitted, small_db, baseline):
        _, truth = small_db
        _, baseline_json = baseline
        outcome = run_resilient(
            self._shared(fitted), truth, NAMES, VARIANT, MIN_SIM, workers=WORKERS
        )
        assert outcome.complete and not outcome.errors
        assert _result_json(outcome.result) == baseline_json

    def test_one_death_respawns_reattaches_and_unlinks_once(
        self, fitted, small_db, tmp_path, baseline
    ):
        _, truth = small_db
        _, baseline_json = baseline
        unlinks0 = _counter("perf.shm.unlinks")
        deaths0 = _counter("perf.parallel.worker_deaths")
        plan = FaultPlan().kill_at(
            "profile", item=NAMES[1], once_path=tmp_path / "latch"
        )
        with fault_plan(plan):
            outcome = run_resilient(
                self._shared(fitted), truth, NAMES, VARIANT, MIN_SIM,
                workers=WORKERS,
            )
        assert outcome.complete and not outcome.errors
        assert _result_json(outcome.result) == baseline_json
        assert _counter("perf.parallel.worker_deaths") - deaths0 == 1
        assert _counter("perf.shm.unlinks") - unlinks0 == 1
        _report("shm_worker_sigkill_once", {
            "workers": WORKERS,
            "byte_identical": True,
            "unlinks": 1,
        })

    def test_deadline_tail_still_unlinks(self, fitted, small_db):
        _, truth = small_db
        unlinks0 = _counter("perf.shm.unlinks")
        ticks = iter([0.0, 0.5] + [100.0] * 100)
        outcome = run_resilient(
            self._shared(fitted), truth, NAMES, VARIANT, MIN_SIM,
            workers=WORKERS,
            deadline=Deadline(1.0, clock=lambda: next(ticks)),
        )
        assert outcome.interrupted
        assert _counter("perf.shm.unlinks") - unlinks0 == 1

    def test_deadline_before_first_dispatch_still_unlinks(
        self, fitted, small_db
    ):
        # Expiry before the first next() means the map generator never
        # starts, so its finally never runs — the runner itself must
        # release the segment (generator.close() on an unstarted
        # generator is a no-op).
        _, truth = small_db
        unlinks0 = _counter("perf.shm.unlinks")
        ticks = iter([0.0] + [100.0] * 100)
        outcome = run_resilient(
            self._shared(fitted), truth, NAMES, VARIANT, MIN_SIM,
            workers=WORKERS,
            deadline=Deadline(1.0, clock=lambda: next(ticks)),
        )
        assert outcome.interrupted
        assert outcome.n_completed == 0
        assert _counter("perf.shm.unlinks") - unlinks0 == 1


class TestDeadlineCheckpoint:
    """Fault: wall-clock exhaustion. Site: the resilient experiment loop."""

    def test_expired_run_leaves_resumable_not_complete_checkpoint(
        self, fitted, small_db, tmp_path, baseline
    ):
        _, truth = small_db
        _, baseline_json = baseline
        ckpt_path = tmp_path / "run.ckpt.json"

        def checkpoint():
            return experiment_checkpoint(ckpt_path, NAMES, VARIANT.key, MIN_SIM)

        # One name's worth of clock, then far past the deadline.
        ticks = iter([0.0, 0.5] + [100.0] * 100)
        outcome = run_resilient(
            fitted, truth, NAMES, VARIANT, MIN_SIM,
            checkpoint=checkpoint(),
            deadline=Deadline(1.0, clock=lambda: next(ticks)),
        )
        assert outcome.interrupted and not outcome.complete

        saved = json.loads(ckpt_path.read_text())
        assert saved["complete"] is False  # resumable, not final
        assert len(saved["completed"]) < len(NAMES)

        resumed = run_resilient(
            fitted, truth, NAMES, VARIANT, MIN_SIM, checkpoint=checkpoint()
        )
        assert resumed.complete
        assert _result_json(resumed.result) == baseline_json
        assert json.loads(ckpt_path.read_text())["complete"] is True
        _report("deadline_resumable_checkpoint", {
            "completed_before_deadline": len(saved["completed"]),
            "resumed_byte_identical": True,
        })
