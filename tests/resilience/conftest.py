"""Safety nets: no fault plan — and no shm segment — leaks between tests."""

import pytest

from repro.perf import active_segments
from repro.resilience import clear_fault_plan


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    yield
    clear_fault_plan()


@pytest.fixture(autouse=True)
def _no_leaked_shm_segments():
    """Every scenario — kills, deadlines, aborts — must unlink its segment."""
    yield
    assert active_segments() == [], "leaked shared-memory segment(s)"
