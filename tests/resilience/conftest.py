"""Safety net: no fault plan ever leaks between tests."""

import pytest

from repro.resilience import clear_fault_plan


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    yield
    clear_fault_plan()
