"""The retry helper (budget, backoff, jitter) and the Deadline clock."""

import random

import pytest

from repro.errors import ConvergenceError, DeadlineExceeded
from repro.obs import get_metrics
from repro.resilience import Deadline, retry


def fake_clock(*ticks):
    """A monotonic clock yielding the given instants (last one repeats)."""
    times = list(ticks)

    def clock():
        return times.pop(0) if len(times) > 1 else times[0]

    return clock


class TestRetry:
    def test_first_attempt_success_calls_once(self):
        calls = []
        result = retry(lambda k: calls.append(k) or "ok", budget=3)
        assert result == "ok"
        assert calls == [0]

    def test_retries_until_success_with_attempt_index(self):
        def flaky(attempt):
            if attempt < 2:
                raise ConvergenceError("not yet")
            return attempt

        assert retry(flaky, budget=5, retry_on=ConvergenceError) == 2

    def test_budget_exhaustion_reraises_last_exception(self):
        def always(attempt):
            raise ConvergenceError(f"attempt {attempt}")

        with pytest.raises(ConvergenceError, match="attempt 2"):
            retry(always, budget=3, retry_on=ConvergenceError)

    def test_non_matching_exception_propagates_immediately(self):
        calls = []

        def wrong(attempt):
            calls.append(attempt)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry(wrong, budget=5, retry_on=ConvergenceError)
        assert calls == [0]

    def test_backoff_doubles_with_bounded_jitter(self):
        delays = []

        def always(attempt):
            raise ValueError("x")

        with pytest.raises(ValueError):
            retry(
                always, budget=4, backoff=0.1, jitter=0.5, seed=42,
                sleep=delays.append,
            )
        assert len(delays) == 3
        for i, delay in enumerate(delays):
            base = 0.1 * 2**i
            assert base <= delay <= base * 1.5

    def test_max_backoff_caps_delay(self):
        delays = []
        with pytest.raises(ValueError):
            retry(
                lambda k: (_ for _ in ()).throw(ValueError("x")),
                budget=6, backoff=10.0, max_backoff=15.0, jitter=0.0,
                sleep=delays.append,
            )
        assert max(delays) <= 15.0

    def test_deadline_stops_retry_loop(self):
        deadline = Deadline(5.0, clock=fake_clock(0.0, 1.0, 100.0))

        def always(attempt):
            raise ConvergenceError("x")

        with pytest.raises(DeadlineExceeded) as excinfo:
            retry(always, budget=10, deadline=deadline)
        # The last real failure is chained for the report.
        assert isinstance(excinfo.value.__cause__, ConvergenceError)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            retry(lambda k: None, budget=0)

    def _delay_schedule(self, **kwargs):
        delays = []

        def always(attempt):
            raise ValueError("x")

        with pytest.raises(ValueError):
            retry(
                always, budget=4, backoff=0.1, jitter=0.5,
                sleep=delays.append, **kwargs,
            )
        return delays

    def test_same_seed_reproduces_the_jitter_schedule(self):
        assert self._delay_schedule(seed=7) == self._delay_schedule(seed=7)
        assert self._delay_schedule(seed=7) != self._delay_schedule(seed=8)

    def test_explicit_rng_drives_jitter(self):
        """An injected Random must produce the same schedule as an equally
        seeded private one — the caller's stream is actually used."""
        assert (
            self._delay_schedule(rng=random.Random(7))
            == self._delay_schedule(seed=7)
        )

    def test_default_jitter_schedule_is_pinned(self):
        """Regression: with neither ``rng`` nor ``seed`` the jitter must
        come from a pinned private ``Random(0)`` — ``Random(None)`` would
        seed from the OS and a replay that retries would sleep (and,
        under deadlines, behave) differently from the original run."""
        assert self._delay_schedule() == self._delay_schedule()
        assert self._delay_schedule() == self._delay_schedule(seed=0)

    def test_jitter_never_touches_global_random(self):
        random.seed(123)
        before = random.random()
        random.seed(123)
        self._delay_schedule(seed=None)
        assert random.random() == before

    def test_rng_and_seed_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            retry(lambda k: None, rng=random.Random(0), seed=1)

    def test_attempts_counted_in_obs_registry(self):
        attempts = get_metrics().counter("resilience.retry_attempts")
        before = attempts.value

        def flaky(attempt):
            if attempt < 2:
                raise ValueError("x")

        retry(flaky, budget=3, retry_on=ValueError)
        assert attempts.value == before + 2


class TestDeadline:
    def test_unbounded_deadline_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()  # no raise

    def test_expiry_and_remaining(self):
        deadline = Deadline(10.0, clock=fake_clock(0.0, 4.0, 11.0, 11.0))
        assert deadline.remaining() == pytest.approx(6.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="10.0s deadline"):
            deadline.check()

    def test_non_positive_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)
