"""Error policies at the ingestion layer: DBLP XML records and CSV rows."""

import json

import pytest

from repro.data.dblp_xml import iter_dblp_records, load_dblp_xml
from repro.errors import IntegrityError
from repro.obs import get_metrics
from repro.reldb.csvio import load_database, save_database
from repro.resilience import ErrorCollector, FaultPlan, Policy, fault_plan

MESSY_XML = """<dblp>
<inproceedings key="ok/1">
  <author>Wei Wang</author><author>Jiong Yang</author>
  <title>Good paper.</title><booktitle>VLDB</booktitle><year>1997</year>
</inproceedings>
<inproceedings key="bad/year">
  <author>A B</author><title>Year is not an integer.</title>
  <booktitle>ICDE</booktitle><year>199x</year>
</inproceedings>
<inproceedings key="bad/authors">
  <author>   </author><author></author>
  <title>Only whitespace authors.</title>
  <booktitle>ICDE</booktitle><year>2001</year>
</inproceedings>
<inproceedings key="ok/2">
  <author>Hui Fang</author><author>  Wei Wang </author><author> </author>
  <title>One empty author dropped, record kept.</title>
  <booktitle>SIGMOD</booktitle><year>2002</year>
</inproceedings>
</dblp>"""


class TestDblpRecordSkipping:
    def test_bad_year_and_empty_authors_skipped_and_counted(self):
        skipped = get_metrics().counter("dblp.records_skipped")
        dropped = get_metrics().counter("dblp.authors_dropped")
        s0, d0 = skipped.value, dropped.value
        records = list(iter_dblp_records(MESSY_XML))
        assert [r.key for r in records] == ["ok/1", "ok/2"]
        assert skipped.value == s0 + 2  # bad/year and bad/authors
        assert dropped.value == d0 + 3  # two whitespace + one trailing empty
        # The valid record keeps its real authors, stripped.
        assert records[1].authors == ["Hui Fang", "Wei Wang"]

    def test_load_survives_messy_records(self):
        db = load_dblp_xml(MESSY_XML, prepared=False)
        names = {row[1] for row in db.table("Authors").rows}
        assert names == {"Wei Wang", "Jiong Yang", "Hui Fang"}

    def test_injected_record_fault_collected(self):
        plan = FaultPlan().fail_at("ingest.record", item="ok/1")
        collector = ErrorCollector()
        with fault_plan(plan):
            records = list(
                iter_dblp_records(
                    MESSY_XML, on_error=Policy.COLLECT, collector=collector
                )
            )
        assert [r.key for r in records] == ["ok/2"]
        assert collector.items(stage="ingest.record") == ["ok/1"]

    def test_injected_record_fault_raises_under_raise_policy(self):
        from repro.resilience import FaultInjected

        with fault_plan(FaultPlan().fail_at("ingest.record", item="ok/1")):
            with pytest.raises(FaultInjected):
                list(iter_dblp_records(MESSY_XML, on_error=Policy.RAISE))


class TestCsvRowPolicies:
    @pytest.fixture()
    def saved_world(self, small_db, tmp_path):
        db, _ = small_db
        save_database(db, tmp_path)
        return tmp_path

    def test_corrupt_row_raises_by_default(self, saved_world):
        path = saved_world / "Authors.csv"
        path.write_text(path.read_text() + "999\n")  # wrong arity
        with pytest.raises(IntegrityError, match="Authors.csv"):
            load_database(saved_world)

    def test_corrupt_row_collected_names_the_line(self, saved_world):
        path = saved_world / "Authors.csv"
        n_rows = len(path.read_text().splitlines()) - 1
        path.write_text(path.read_text() + "999\n")
        collector = ErrorCollector()
        db = load_database(saved_world, on_error="collect", collector=collector)
        assert len(db.table("Authors").rows) == n_rows
        (item,) = collector.items(stage="csv.row")
        assert item.endswith(f"Authors.csv:{n_rows + 2}")

    def test_missing_csv_file_raises_integrity_error(self, saved_world):
        (saved_world / "Conferences.csv").unlink()
        with pytest.raises(IntegrityError, match="Conferences.csv"):
            load_database(saved_world)

    def test_corrupt_schema_json_raises_schema_error(self, saved_world):
        from repro.errors import SchemaError

        (saved_world / "schema.json").write_text("{broken")
        with pytest.raises(SchemaError, match="schema.json"):
            load_database(saved_world)

    def test_schema_missing_keys_raises_schema_error(self, saved_world):
        from repro.errors import SchemaError

        (saved_world / "schema.json").write_text(json.dumps({"relations": []}))
        with pytest.raises(SchemaError, match="foreign_keys"):
            load_database(saved_world)

    def test_round_trip_still_works(self, saved_world, small_db):
        db, _ = small_db
        loaded = load_database(saved_world)
        assert len(loaded.table("Publish").rows) == len(db.table("Publish").rows)
