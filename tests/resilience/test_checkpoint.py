"""Checkpoint files: durable atomic writes, checksums, quarantine, resume."""

import json
from unittest import mock

import pytest

from repro.errors import CheckpointError
from repro.obs import get_metrics
from repro.resilience import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    attach_checksum,
    flip_byte,
    truncate_file,
    verify_checksum,
    write_json_atomic,
)


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(
        tmp_path / "ckpt.json",
        kind="experiment",
        signature={"names": ["a", "b"], "min_sim": 0.006},
    )


class TestWriteJsonAtomic:
    def test_writes_and_returns_path(self, tmp_path):
        path = write_json_atomic(tmp_path / "out.json", {"x": 1})
        assert json.loads(path.read_text()) == {"x": 1}

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_json_atomic(tmp_path / "out.json", {"x": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_creates_parent_directories(self, tmp_path):
        path = write_json_atomic(tmp_path / "deep" / "out.json", [1, 2])
        assert path.exists()

    def test_replaces_existing_content_atomically(self, tmp_path):
        target = tmp_path / "out.json"
        write_json_atomic(target, {"v": 1})
        write_json_atomic(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}

    def test_fsyncs_tmp_file_before_rename(self, tmp_path):
        """The tmp file's bytes must be on disk before os.replace publishes
        them — otherwise a power failure can expose an empty renamed file."""
        synced = []
        renamed = []
        real_fsync = __import__("os").fsync

        def recording_fsync(fd):
            synced.append(len(renamed))
            return real_fsync(fd)

        def recording_replace(src, dst):
            renamed.append(src)
            return __import__("os").rename(src, dst)

        with mock.patch(
            "repro.resilience.checkpoint.os.fsync", side_effect=recording_fsync
        ), mock.patch(
            "repro.resilience.checkpoint.os.replace", side_effect=recording_replace
        ):
            write_json_atomic(tmp_path / "out.json", {"x": 1})
        # At least one fsync (the tmp file's) happened strictly before the
        # rename; the directory fsync follows it.
        assert synced and synced[0] == 0
        assert len(synced) >= 2  # file + directory

    def test_directory_fsync_failure_is_tolerated(self, tmp_path):
        """Filesystems that refuse directory fsync must not break writes."""
        real_open = __import__("os").open

        def failing_dir_open(path, flags, *a, **kw):
            if str(path) == str(tmp_path):
                raise OSError("directory fds not supported")
            return real_open(path, flags, *a, **kw)

        with mock.patch(
            "repro.resilience.checkpoint.os.open", side_effect=failing_dir_open
        ):
            path = write_json_atomic(tmp_path / "out.json", {"x": 1})
        assert json.loads(path.read_text()) == {"x": 1}


class TestChecksum:
    def test_attach_and_verify_round_trip(self):
        payload = attach_checksum({"a": 1, "b": [2, 3]})
        assert payload["checksum"].startswith("sha256:")
        assert verify_checksum(payload)

    def test_verify_rejects_tampering(self):
        payload = attach_checksum({"a": 1})
        payload["a"] = 2
        assert not verify_checksum(payload)

    def test_checksum_independent_of_key_order(self):
        assert (
            attach_checksum({"a": 1, "b": 2})["checksum"]
            == attach_checksum({"b": 2, "a": 1})["checksum"]
        )


class TestCheckpointStore:
    def test_save_load_round_trip(self, store):
        assert not store.exists()
        store.save([{"name": "a", "f1": 0.5}], errors=[], complete=False)
        assert store.exists()
        payload = store.load()
        assert payload["format_version"] == CHECKPOINT_VERSION
        assert payload["completed"] == [{"name": "a", "f1": 0.5}]
        assert payload["complete"] is False

    def test_saved_file_carries_valid_checksum(self, store):
        store.save([{"name": "a"}])
        assert verify_checksum(json.loads(store.path.read_text()))

    def test_complete_flag_persisted(self, store):
        store.save([], complete=True)
        assert store.load()["complete"] is True

    def test_unknown_version_rejected(self, store):
        store.save([])
        payload = json.loads(store.path.read_text())
        payload["format_version"] = 99
        store.path.write_text(json.dumps(attach_checksum(payload)))
        with pytest.raises(CheckpointError, match="format_version"):
            store.load()

    def test_kind_mismatch_rejected(self, store, tmp_path):
        store.save([])
        other = CheckpointStore(
            store.path, kind="calibrate", signature=store.signature
        )
        with pytest.raises(CheckpointError, match="kind"):
            other.load()

    def test_signature_mismatch_names_the_differing_keys(self, store):
        store.save([])
        other = CheckpointStore(
            store.path,
            kind="experiment",
            signature={"names": ["a", "b"], "min_sim": 0.5},
        )
        with pytest.raises(CheckpointError, match="min_sim"):
            other.load()

    def test_semantic_mismatch_does_not_quarantine(self, store):
        """An intact file from another run must be left in place."""
        store.save([])
        other = CheckpointStore(
            store.path, kind="calibrate", signature=store.signature
        )
        with pytest.raises(CheckpointError):
            other.load()
        assert store.path.exists()
        assert not store.quarantine_path.exists()


class TestQuarantine:
    def _quarantine_count(self):
        return get_metrics().counter("checkpoint.corrupt_quarantined").value

    def assert_quarantined(self, store):
        assert not store.path.exists()
        assert store.quarantine_path.exists()

    def test_corrupt_json_quarantined_and_resumed_from_nothing(self, store):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text("{not json")
        before = self._quarantine_count()
        assert store.load() is None
        self.assert_quarantined(store)
        assert self._quarantine_count() - before == 1

    def test_non_object_payload_quarantined(self, store):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text("[1, 2, 3]")
        assert store.load() is None
        self.assert_quarantined(store)

    def test_truncated_file_quarantined(self, store):
        store.save([{"name": "a", "f1": 0.5}])
        truncate_file(store.path, store.path.stat().st_size // 2)
        assert store.load() is None
        self.assert_quarantined(store)

    def test_bit_flip_quarantined(self, store):
        store.save([{"name": "a", "f1": 0.5}])
        raw = store.path.read_text()
        flip_byte(store.path, raw.index('"f1"') + len('"f1": 0.'))
        assert store.load() is None
        self.assert_quarantined(store)

    def test_valid_json_tamper_caught_by_checksum_alone(self, store):
        """A value edit that keeps the JSON well-formed is invisible to the
        parser and the schema checks — only the checksum catches it."""
        store.save([{"name": "a", "f1": 0.5}])
        payload = json.loads(store.path.read_text())
        payload["completed"][0]["f1"] = 0.9
        store.path.write_text(json.dumps(payload))
        assert store.load() is None
        self.assert_quarantined(store)

    def test_checksumless_legacy_file_quarantined(self, store):
        """A pre-checksum (v1-era) file cannot be trusted byte-for-byte."""
        write_json_atomic(store.path, {
            "format_version": 1,
            "kind": "experiment",
            "signature": store.signature,
            "completed": [],
            "errors": [],
            "complete": False,
        })
        assert store.load() is None
        self.assert_quarantined(store)

    def test_quarantined_bytes_preserved_for_forensics(self, store):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text("{torn")
        store.load()
        assert store.quarantine_path.read_text() == "{torn"

    def test_save_after_quarantine_starts_fresh(self, store):
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text("garbage")
        assert store.load() is None
        store.save([{"name": "a"}])
        assert store.load()["completed"] == [{"name": "a"}]
