"""Checkpoint files: atomic writes, versioning, and resume validation."""

import json

import pytest

from repro.errors import CheckpointError
from repro.resilience import CHECKPOINT_VERSION, CheckpointStore, write_json_atomic


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(
        tmp_path / "ckpt.json",
        kind="experiment",
        signature={"names": ["a", "b"], "min_sim": 0.006},
    )


class TestWriteJsonAtomic:
    def test_writes_and_returns_path(self, tmp_path):
        path = write_json_atomic(tmp_path / "out.json", {"x": 1})
        assert json.loads(path.read_text()) == {"x": 1}

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_json_atomic(tmp_path / "out.json", {"x": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_creates_parent_directories(self, tmp_path):
        path = write_json_atomic(tmp_path / "deep" / "out.json", [1, 2])
        assert path.exists()

    def test_replaces_existing_content_atomically(self, tmp_path):
        target = tmp_path / "out.json"
        write_json_atomic(target, {"v": 1})
        write_json_atomic(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}


class TestCheckpointStore:
    def test_save_load_round_trip(self, store):
        assert not store.exists()
        store.save([{"name": "a", "f1": 0.5}], errors=[], complete=False)
        assert store.exists()
        payload = store.load()
        assert payload["format_version"] == CHECKPOINT_VERSION
        assert payload["completed"] == [{"name": "a", "f1": 0.5}]
        assert payload["complete"] is False

    def test_complete_flag_persisted(self, store):
        store.save([], complete=True)
        assert store.load()["complete"] is True

    def test_corrupt_json_raises_checkpoint_error_with_path(self, store):
        store.path.write_text("{not json")
        with pytest.raises(CheckpointError) as excinfo:
            store.load()
        assert "ckpt.json" in str(excinfo.value)

    def test_unknown_version_rejected(self, store):
        store.save([])
        payload = json.loads(store.path.read_text())
        payload["format_version"] = 99
        store.path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="format_version"):
            store.load()

    def test_kind_mismatch_rejected(self, store, tmp_path):
        store.save([])
        other = CheckpointStore(
            store.path, kind="calibrate", signature=store.signature
        )
        with pytest.raises(CheckpointError, match="kind"):
            other.load()

    def test_signature_mismatch_names_the_differing_keys(self, store):
        store.save([])
        other = CheckpointStore(
            store.path,
            kind="experiment",
            signature={"names": ["a", "b"], "min_sim": 0.5},
        )
        with pytest.raises(CheckpointError, match="min_sim"):
            other.load()

    def test_non_object_payload_rejected(self, store):
        store.path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="JSON object"):
            store.load()

    def test_missing_completed_list_rejected(self, store):
        write_json_atomic(store.path, {
            "format_version": CHECKPOINT_VERSION,
            "kind": "experiment",
            "signature": store.signature,
        })
        with pytest.raises(CheckpointError, match="completed"):
            store.load()
