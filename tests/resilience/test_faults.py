"""The FaultPlan injection machinery itself."""

import signal
from unittest import mock

import pytest

from repro.resilience import (
    FaultInjected,
    FaultPlan,
    clear_fault_plan,
    fault_check,
    fault_plan,
    flip_byte,
    install_fault_plan,
    truncate_file,
)
from repro.resilience.faults import active_fault_plan


class TestFaultPlan:
    def test_site_and_item_matching(self):
        plan = FaultPlan().fail_at("profile", item="Wei Wang")
        plan.check("profile", "Rakesh Kumar")  # different item: no fault
        plan.check("cluster", "Wei Wang")  # different site: no fault
        with pytest.raises(FaultInjected, match="profile"):
            plan.check("profile", "Wei Wang")

    def test_item_none_matches_any(self):
        plan = FaultPlan().fail_at("ingest.record")
        with pytest.raises(FaultInjected):
            plan.check("ingest.record", "anything")

    def test_times_bounds_triggers(self):
        plan = FaultPlan().fail_at("site", times=2)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.check("site")
        plan.check("site")  # exhausted
        assert len(plan.triggered) == 2

    def test_unlimited_times(self):
        plan = FaultPlan().fail_at("site", times=-1)
        for _ in range(5):
            with pytest.raises(FaultInjected):
                plan.check("site")

    def test_after_skips_matching_calls(self):
        plan = FaultPlan().fail_at("site", after=2)
        plan.check("site")
        plan.check("site")
        with pytest.raises(FaultInjected):
            plan.check("site")

    def test_custom_exception_instance(self):
        plan = FaultPlan().fail_at("site", exc=KeyboardInterrupt())
        with pytest.raises(KeyboardInterrupt):
            plan.check("site")

    def test_triggered_records_site_and_item(self):
        plan = FaultPlan().fail_at("profile", item="X")
        with pytest.raises(FaultInjected):
            plan.check("profile", "X")
        (trigger,) = plan.triggered
        assert (trigger.site, trigger.item) == ("profile", "X")


class TestProcessFaults:
    def test_signal_fault_sends_to_current_process(self):
        plan = FaultPlan().fail_at("site", signal=signal.SIGUSR1, times=1)
        with mock.patch("repro.resilience.faults.os.kill") as kill:
            plan.check("site")
        kill.assert_called_once()
        (pid, sig), _ = kill.call_args
        assert sig == signal.SIGUSR1
        assert len(plan.triggered) == 1

    def test_kill_at_defaults_to_sigkill(self):
        plan = FaultPlan().kill_at("site")
        with mock.patch("repro.resilience.faults.os.kill") as kill:
            plan.check("site")
        assert kill.call_args[0][1] == signal.SIGKILL

    def test_once_path_latch_fires_exactly_once(self, tmp_path):
        latch = tmp_path / "latch"
        plan = FaultPlan().kill_at("site", once_path=latch)
        with mock.patch("repro.resilience.faults.os.kill") as kill:
            for _ in range(5):
                plan.check("site")
        kill.assert_called_once()
        assert latch.exists()

    def test_once_path_latch_shared_across_plans(self, tmp_path):
        """Two plans (as in two forked workers) share one latch file."""
        latch = tmp_path / "latch"
        first = FaultPlan().kill_at("site", once_path=latch)
        second = FaultPlan().kill_at("site", once_path=latch)
        with mock.patch("repro.resilience.faults.os.kill") as kill:
            first.check("site")
            second.check("site")
        kill.assert_called_once()

    def test_exception_fault_honors_once_path(self, tmp_path):
        latch = tmp_path / "latch"
        plan = FaultPlan().fail_at("site", times=-1, once_path=latch)
        with pytest.raises(FaultInjected):
            plan.check("site")
        plan.check("site")  # latch already claimed: silent


class TestFileCorruptors:
    def test_truncate_file(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"0123456789")
        truncate_file(target, 4)
        assert target.read_bytes() == b"0123"

    def test_flip_byte(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"\x00\x0f\xff")
        flip_byte(target, 1)
        assert target.read_bytes() == b"\x00\xf0\xff"

    def test_flip_byte_rejects_out_of_range_offset(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"ab")
        with pytest.raises(ValueError, match="offset"):
            flip_byte(target, 5)


class TestGlobalHook:
    def test_fault_check_is_noop_without_plan(self):
        clear_fault_plan()
        fault_check("profile", "anything")  # no raise

    def test_install_and_clear(self):
        plan = FaultPlan().fail_at("site")
        install_fault_plan(plan)
        assert active_fault_plan() is plan
        with pytest.raises(FaultInjected):
            fault_check("site")
        clear_fault_plan()
        assert active_fault_plan() is None
        fault_check("site")

    def test_context_manager_clears_on_exit(self):
        with fault_plan(FaultPlan().fail_at("site")) as plan:
            with pytest.raises(FaultInjected):
                fault_check("site")
            assert active_fault_plan() is plan
        assert active_fault_plan() is None
