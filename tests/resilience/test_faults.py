"""The FaultPlan injection machinery itself."""

import pytest

from repro.resilience import (
    FaultInjected,
    FaultPlan,
    clear_fault_plan,
    fault_check,
    fault_plan,
    install_fault_plan,
)
from repro.resilience.faults import active_fault_plan


class TestFaultPlan:
    def test_site_and_item_matching(self):
        plan = FaultPlan().fail_at("profile", item="Wei Wang")
        plan.check("profile", "Rakesh Kumar")  # different item: no fault
        plan.check("cluster", "Wei Wang")  # different site: no fault
        with pytest.raises(FaultInjected, match="profile"):
            plan.check("profile", "Wei Wang")

    def test_item_none_matches_any(self):
        plan = FaultPlan().fail_at("ingest.record")
        with pytest.raises(FaultInjected):
            plan.check("ingest.record", "anything")

    def test_times_bounds_triggers(self):
        plan = FaultPlan().fail_at("site", times=2)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.check("site")
        plan.check("site")  # exhausted
        assert len(plan.triggered) == 2

    def test_unlimited_times(self):
        plan = FaultPlan().fail_at("site", times=-1)
        for _ in range(5):
            with pytest.raises(FaultInjected):
                plan.check("site")

    def test_after_skips_matching_calls(self):
        plan = FaultPlan().fail_at("site", after=2)
        plan.check("site")
        plan.check("site")
        with pytest.raises(FaultInjected):
            plan.check("site")

    def test_custom_exception_instance(self):
        plan = FaultPlan().fail_at("site", exc=KeyboardInterrupt())
        with pytest.raises(KeyboardInterrupt):
            plan.check("site")

    def test_triggered_records_site_and_item(self):
        plan = FaultPlan().fail_at("profile", item="X")
        with pytest.raises(FaultInjected):
            plan.check("profile", "X")
        (trigger,) = plan.triggered
        assert (trigger.site, trigger.item) == ("profile", "X")


class TestGlobalHook:
    def test_fault_check_is_noop_without_plan(self):
        clear_fault_plan()
        fault_check("profile", "anything")  # no raise

    def test_install_and_clear(self):
        plan = FaultPlan().fail_at("site")
        install_fault_plan(plan)
        assert active_fault_plan() is plan
        with pytest.raises(FaultInjected):
            fault_check("site")
        clear_fault_plan()
        assert active_fault_plan() is None
        fault_check("site")

    def test_context_manager_clears_on_exit(self):
        with fault_plan(FaultPlan().fail_at("site")) as plan:
            with pytest.raises(FaultInjected):
                fault_check("site")
            assert active_fault_plan() is plan
        assert active_fault_plan() is None
