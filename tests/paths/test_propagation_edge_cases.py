"""Edge cases of the propagation engine: null FKs mid-path, dead ends,
degenerate schemas."""

import pytest

from repro.data.dblp_schema import new_dblp_database, prepare_dblp_database
from repro.paths import JoinPath, PropagationEngine
from repro.reldb.joins import JoinStep

PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
PAP_PROC = JoinStep("Publications", "proc_key", "Proceedings", "proc_key", "n1")
PROC_CONF = JoinStep("Proceedings", "conf_key", "Conferences", "conf_key", "n1")


def db_with_null_proc():
    db = new_dblp_database()
    db.insert_many("Authors", [(0, "Wei Wang"), (1, "A")])
    db.insert_many("Conferences", [(0, "VLDB", "X")])
    db.insert_many("Proceedings", [(0, 0, 2000, "A")])
    # Paper 1 has no proceedings (null FK) — e.g. an unpublished preprint.
    db.insert_many("Publications", [(0, "p0", 0), (1, "preprint", None)])
    db.insert_many("Publish", [(0, 0), (0, 1), (1, 0), (1, 1)])
    db.check_integrity()
    return db


class TestNullForeignKeys:
    def test_null_fk_loses_mass_silently(self):
        db = db_with_null_proc()
        engine = PropagationEngine(db)
        venue_path = JoinPath([PUB_PAP, PAP_PROC])
        # Ref row 2 = (paper 1, Wei Wang): its paper has no proceedings.
        result = engine.propagate(venue_path, 2)
        assert result.forward == {}
        assert result.backward == {}

    def test_partial_mass_through_mixed_levels(self):
        db = db_with_null_proc()
        engine = PropagationEngine(db)
        # From ref 0 (paper 0) the venue path works fine.
        result = engine.propagate(JoinPath([PUB_PAP, PAP_PROC, PROC_CONF]), 0)
        assert result.forward == pytest.approx({0: 1.0})

    def test_empty_profile_similarities_are_zero(self):
        from repro.paths.profiles import NeighborProfile
        from repro.similarity import set_resemblance, walk_probability

        db = db_with_null_proc()
        engine = PropagationEngine(db)
        venue_path = JoinPath([PUB_PAP, PAP_PROC])
        empty = NeighborProfile.from_result(engine.propagate(venue_path, 2))
        full = NeighborProfile.from_result(engine.propagate(venue_path, 0))
        assert set_resemblance(empty, full) == 0.0
        assert walk_probability(empty, full) == 0.0


class TestDegenerateDatabases:
    def test_single_row_database(self):
        db = new_dblp_database()
        db.insert("Authors", (0, "Solo"))
        db.insert("Conferences", (0, "C", "P"))
        db.insert("Proceedings", (0, 0, 2000, "L"))
        db.insert("Publications", (0, "t", 0))
        db.insert("Publish", (0, 0))
        engine = PropagationEngine(db)
        result = engine.propagate(JoinPath([PUB_PAP]), 0)
        assert result.forward == {0: 1.0}
        assert result.backward == {0: 1.0}

    def test_origin_exclusion_on_sibling_path_with_no_siblings(self):
        db = new_dblp_database()
        db.insert("Authors", (0, "Solo"))
        db.insert("Conferences", (0, "C", "P"))
        db.insert("Proceedings", (0, 0, 2000, "L"))
        db.insert("Publications", (0, "t", 0))
        db.insert("Publish", (0, 0))
        engine = PropagationEngine(db)
        sibling = JoinPath([PUB_PAP, PUB_PAP.reverse()])
        result = engine.propagate(sibling, 0)
        assert result.forward == {}

    def test_prepared_db_virtual_path_reaches_year(self):
        db = db_with_null_proc()
        prepare_dblp_database(db)
        year_step = JoinStep(
            "Proceedings", "year", "_v_Proceedings_year", "value", "n1"
        )
        path = JoinPath([PUB_PAP, PAP_PROC, year_step])
        result = PropagationEngine(db).propagate(path, 0)
        assert len(result.forward) == 1
        assert result.forward_mass() == pytest.approx(1.0)
