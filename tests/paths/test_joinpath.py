import pytest

from repro.errors import PathError
from repro.paths import JoinPath
from repro.reldb.joins import JoinStep


def step(src, dst, card="n1", src_attr=None, dst_attr=None):
    return JoinStep(src, src_attr or "k", dst, dst_attr or "k", card)


PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
PAP_PUB = PUB_PAP.reverse()
PUB_AUTH = JoinStep("Publish", "author_key", "Authors", "author_key", "n1")


class TestJoinPath:
    def test_empty_path_rejected(self):
        with pytest.raises(PathError):
            JoinPath([])

    def test_non_contiguous_rejected(self):
        with pytest.raises(PathError):
            JoinPath([PUB_PAP, PUB_AUTH])

    def test_endpoints_and_length(self):
        path = JoinPath([PUB_PAP, PAP_PUB, PUB_AUTH])
        assert path.start_relation == "Publish"
        assert path.end_relation == "Authors"
        assert path.length == 3

    def test_relation_sequence(self):
        path = JoinPath([PUB_PAP, PAP_PUB, PUB_AUTH])
        assert path.relation_sequence() == [
            "Publish",
            "Publications",
            "Publish",
            "Authors",
        ]

    def test_extend_checks_contiguity(self):
        path = JoinPath([PUB_PAP])
        extended = path.extend(PAP_PUB)
        assert extended.length == 2
        with pytest.raises(PathError):
            path.extend(PUB_AUTH)

    def test_extend_returns_new_object(self):
        path = JoinPath([PUB_PAP])
        path.extend(PAP_PUB)
        assert path.length == 1

    def test_sibling_expansions_counts_reversals(self):
        coauthor = JoinPath([PUB_PAP, PAP_PUB, PUB_AUTH])
        assert coauthor.sibling_expansions() == 1
        assert JoinPath([PUB_PAP]).sibling_expansions() == 0

    def test_signature_is_stable_and_distinct(self):
        p1 = JoinPath([PUB_PAP])
        p2 = JoinPath([PUB_PAP, PAP_PUB])
        assert p1.signature() != p2.signature()
        assert p1.signature() == JoinPath([PUB_PAP]).signature()

    def test_describe(self):
        path = JoinPath([PUB_PAP, PAP_PUB, PUB_AUTH])
        assert path.describe() == "Publish~Publications~Publish~Authors"

    def test_equality_and_hash(self):
        assert JoinPath([PUB_PAP]) == JoinPath([PUB_PAP])
        assert hash(JoinPath([PUB_PAP])) == hash(JoinPath([PUB_PAP]))
        assert JoinPath([PUB_PAP]) != JoinPath([PUB_AUTH])

    def test_iter_and_len(self):
        path = JoinPath([PUB_PAP, PAP_PUB])
        assert list(path) == [PUB_PAP, PAP_PUB]
        assert len(path) == 2
