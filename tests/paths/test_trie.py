import time

import pytest

from repro.data.dblp_schema import dblp_schema
from repro.paths import (
    JoinPath,
    PathEnumerationConfig,
    PropagationEngine,
    enumerate_paths,
)
from repro.paths.propagation import make_exclusions
from repro.paths.trie import propagate_trie
from repro.reldb.joins import JoinStep

from tests.minidb import WW_AUTHOR_ROW, WW_REFS, build_minidb


@pytest.fixture(scope="module")
def db():
    return build_minidb()


@pytest.fixture(scope="module")
def engine(db):
    return PropagationEngine(db, make_exclusions(Authors={WW_AUTHOR_ROW}))


@pytest.fixture(scope="module")
def paths(db):
    return enumerate_paths(db.schema, "Publish", PathEnumerationConfig(max_hops=5))


class TestTrieEquivalence:
    def test_identical_to_per_path_propagation(self, engine, paths):
        for ref in WW_REFS:
            shared = propagate_trie(engine, paths, ref)
            assert set(shared) == set(paths)
            for path in paths:
                independent = engine.propagate(path, ref)
                assert shared[path].forward == pytest.approx(independent.forward)
                assert shared[path].backward == pytest.approx(independent.backward)
                assert shared[path].level_sizes == independent.level_sizes

    def test_empty_path_list(self, engine):
        assert propagate_trie(engine, [], 0) == {}

    def test_mixed_start_relations_rejected(self, engine):
        a = JoinPath([JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")])
        b = JoinPath([JoinStep("Authors", "author_key", "Publish", "author_key", "1n")])
        with pytest.raises(ValueError):
            propagate_trie(engine, [a, b], 0)

    def test_single_path(self, engine, paths):
        result = propagate_trie(engine, [paths[0]], 0)
        assert paths[0] in result

    def test_duplicate_prefixes_share_levels(self, engine, paths):
        # Structural check: results for a path and its extension agree on
        # the prefix level sizes.
        by_sig = {p.signature(): p for p in paths}
        for path in paths:
            for cut in range(1, path.length):
                prefix = JoinPath(path.steps[:cut])
                if prefix.signature() not in by_sig:
                    continue
                results = propagate_trie(engine, [path, prefix], 0)
                assert (
                    results[path].level_sizes[: cut + 1]
                    == results[prefix].level_sizes
                )


class TestBuilderUsesTrie:
    def test_profiles_for_matches_individual_profiles(self, db, paths):
        from repro.paths.profiles import ProfileBuilder

        shared = ProfileBuilder(db, paths, make_exclusions(Authors={WW_AUTHOR_ROW}))
        individual = ProfileBuilder(
            db, paths, make_exclusions(Authors={WW_AUTHOR_ROW})
        )
        batch = shared.profiles_for(0)
        for path in paths:
            single = individual.profile(path, 0)
            assert batch[path].weights == pytest.approx(single.weights)

    def test_trie_not_slower_on_prefix_heavy_sets(self, db):
        # A smoke perf check on the larger path budget (not a strict timing
        # assertion — just that the shared walk handles the 7-hop set).
        deep = enumerate_paths(
            db.schema,
            "Publish",
            PathEnumerationConfig(max_hops=7, max_sibling_expansions=3, max_start_revisits=3),
        )
        engine = PropagationEngine(db, make_exclusions(Authors={WW_AUTHOR_ROW}))
        results = propagate_trie(engine, deep, 0)
        assert len(results) == len(deep)
