import math

import pytest

from repro.paths import JoinPath, PropagationEngine
from repro.paths.propagation import make_exclusions
from repro.paths.profiles import NeighborProfile, ProfileBuilder
from repro.reldb.joins import JoinStep

from tests.minidb import WW_AUTHOR_ROW, WW_REFS, build_minidb

PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
PAP_PUB = PUB_PAP.reverse()
PUB_AUTH = JoinStep("Publish", "author_key", "Authors", "author_key", "n1")

COAUTHOR = JoinPath([PUB_PAP, PAP_PUB, PUB_AUTH])
PAPER = JoinPath([PUB_PAP])


@pytest.fixture(scope="module")
def db():
    return build_minidb()


@pytest.fixture(scope="module")
def engine(db):
    return PropagationEngine(db, make_exclusions(Authors={WW_AUTHOR_ROW}))


class TestForward:
    def test_paper_path_is_deterministic(self, engine):
        result = engine.propagate(PAPER, 0)
        assert result.forward == {0: 1.0}

    def test_coauthor_forward_hand_computed(self, engine):
        # Ref 0 = (p0, WW); coauthors Jiong Yang (a1) and Jiawei Han (a2),
        # reached with probability 1/2 each (origin row excluded at level 2).
        result = engine.propagate(COAUTHOR, 0)
        assert result.forward == pytest.approx({1: 0.5, 2: 0.5})

    def test_single_coauthor_gets_full_mass(self, engine):
        # Ref 6 = (p2, WW); only coauthor is Jiong Yang (a1).
        result = engine.propagate(COAUTHOR, 6)
        assert result.forward == pytest.approx({1: 1.0})

    def test_forward_mass_at_most_one(self, engine):
        for ref in WW_REFS:
            assert engine.propagate(COAUTHOR, ref).forward_mass() <= 1.0 + 1e-12

    def test_without_exclusions_mass_is_conserved(self, db):
        # No global exclusions, origin still excluded: mass splits over the
        # coauthor rows only, which all reach Authors -> total mass 1.
        engine = PropagationEngine(db)
        result = engine.propagate(COAUTHOR, 0)
        assert result.forward_mass() == pytest.approx(1.0)

    def test_origin_not_in_own_neighborhood(self, db):
        engine = PropagationEngine(db)
        pub_sibling = JoinPath([PUB_PAP, PAP_PUB])
        result = engine.propagate(pub_sibling, 0)
        assert 0 not in result.forward
        assert set(result.forward) == {1, 2}

    def test_exclude_origin_false_keeps_origin(self, db):
        engine = PropagationEngine(db, exclude_origin=False)
        pub_sibling = JoinPath([PUB_PAP, PAP_PUB])
        result = engine.propagate(pub_sibling, 0)
        assert result.forward == pytest.approx({0: 1 / 3, 1: 1 / 3, 2: 1 / 3})

    def test_level_sizes_recorded(self, engine):
        result = engine.propagate(COAUTHOR, 0)
        assert result.level_sizes == [1, 1, 2, 2]


class TestBackward:
    def test_backward_hand_computed(self, engine):
        # See tests/minidb.py docstring. For ref 0: rev(a1) = 1/6 because a1
        # has authorship rows {1, 7}; row 1 gathers 1/3 (paper p0 has 3
        # authorship rows), row 7 contributes 0; degree 2 halves it.
        result = engine.propagate(COAUTHOR, 0)
        assert result.backward[1] == pytest.approx(1 / 6)
        assert result.backward[2] == pytest.approx(1 / 3)

    def test_backward_support_equals_forward_support(self, engine):
        for ref in WW_REFS:
            result = engine.propagate(COAUTHOR, ref)
            assert set(result.backward) == set(result.forward)

    def test_backward_probabilities_in_unit_interval(self, engine):
        for ref in WW_REFS:
            result = engine.propagate(COAUTHOR, ref)
            for value in result.backward.values():
                assert 0.0 < value <= 1.0 + 1e-12

    def test_backward_for_ref6(self, engine):
        # Ref 6 = (p2, WW): a1's rows {1, 7}; row 7 gathers 1/2 (p2 has two
        # authorship rows), row 1 contributes 0; degree 2 -> 1/4.
        result = engine.propagate(COAUTHOR, 6)
        assert result.backward[1] == pytest.approx(1 / 4)


class TestWalkComposition:
    def test_walk_probability_between_equivalent_refs(self, engine):
        # Walk r0 -> coauthors -> r6 = sum_t fwd_0(t) * rev_6(t)
        r0 = engine.propagate(COAUTHOR, 0)
        r6 = engine.propagate(COAUTHOR, 6)
        walk = sum(p * r6.backward.get(t, 0.0) for t, p in r0.forward.items())
        assert walk == pytest.approx(0.5 * 0.25)

    def test_walk_probability_zero_between_distinct_refs(self, engine):
        r0 = engine.propagate(COAUTHOR, 0)
        r3 = engine.propagate(COAUTHOR, 3)
        walk = sum(p * r3.backward.get(t, 0.0) for t, p in r0.forward.items())
        assert walk == 0.0


class TestProfiles:
    def test_profile_from_result(self, engine):
        profile = NeighborProfile.from_result(engine.propagate(COAUTHOR, 0))
        assert profile.support == {1, 2}
        assert profile.forward(1) == pytest.approx(0.5)
        assert profile.backward(2) == pytest.approx(1 / 3)
        assert profile.forward(99) == 0.0
        assert len(profile) == 2
        assert not profile.is_empty()
        assert profile.forward_mass() == pytest.approx(1.0)

    def test_builder_caches(self, db):
        builder = ProfileBuilder(
            db, [COAUTHOR, PAPER], make_exclusions(Authors={WW_AUTHOR_ROW})
        )
        first = builder.profile(COAUTHOR, 0)
        second = builder.profile(COAUTHOR, 0)
        assert first is second
        assert builder.cache_size == 1

    def test_builder_profiles_for_and_warm(self, db):
        builder = ProfileBuilder(
            db, [COAUTHOR, PAPER], make_exclusions(Authors={WW_AUTHOR_ROW})
        )
        profiles = builder.profiles_for(0)
        assert set(profiles) == {COAUTHOR, PAPER}
        builder.warm(WW_REFS)
        assert builder.cache_size == 2 * len(WW_REFS)

    def test_empty_profile_when_no_coauthors(self, db):
        # A paper where WW is the only author yields an empty coauthor profile.
        db2 = build_minidb()
        db2.insert("Publications", (4, "Solo paper", 0))
        row = db2.insert("Publish", (4, 0))
        builder = ProfileBuilder(
            db2, [COAUTHOR], make_exclusions(Authors={WW_AUTHOR_ROW})
        )
        assert builder.profile(COAUTHOR, row).is_empty()


class TestExclusionHelper:
    def test_make_exclusions(self):
        excl = make_exclusions(Publish={1, 2}, Authors={0})
        assert excl == {"Publish": frozenset({1, 2}), "Authors": frozenset({0})}
        assert isinstance(excl["Publish"], frozenset)
