import pytest

from repro.data.dblp_schema import dblp_schema
from repro.paths import PathEnumerationConfig, enumerate_paths
from repro.paths.enumerate import paths_by_signature
from repro.reldb.virtual import is_virtual_relation

from tests.minidb import build_minidb


@pytest.fixture(scope="module")
def prepared_schema():
    """DBLP schema including the virtual relations (needs data, so via minidb)."""
    return build_minidb().schema


def descriptions(paths):
    return {p.describe() for p in paths}


class TestEnumerationOnBareSchema:
    def test_one_hop_paths(self):
        paths = enumerate_paths(dblp_schema(), "Publish", PathEnumerationConfig(max_hops=1))
        assert descriptions(paths) == {
            "Publish~Publications",
            "Publish~Authors",
        }

    def test_coauthor_path_found_at_three_hops(self):
        paths = enumerate_paths(dblp_schema(), "Publish", PathEnumerationConfig(max_hops=3))
        assert "Publish~Publications~Publish~Authors" in descriptions(paths)

    def test_degenerate_backtrack_pruned(self):
        paths = enumerate_paths(dblp_schema(), "Publish", PathEnumerationConfig(max_hops=3))
        # Sibling expansion (n1 then 1n) is allowed: an author's other
        # authorship rows and their papers are reachable.
        assert "Publish~Authors~Publish~Publications" in descriptions(paths)
        # But re-crossing a 1n step with its n1 inverse can only return to
        # the same parent tuple and must be pruned.
        assert "Publish~Authors~Publish~Authors" not in descriptions(paths)
        for path in paths:
            for prev, nxt in zip(path.steps, path.steps[1:]):
                if nxt.is_reverse_of(prev):
                    assert prev.cardinality == "n1"

    def test_prefixes_of_emitted_paths_are_emitted(self):
        paths = enumerate_paths(dblp_schema(), "Publish", PathEnumerationConfig(max_hops=4))
        sigs = {p.signature() for p in paths}
        from repro.paths import JoinPath

        for path in paths:
            for cut in range(1, path.length):
                assert JoinPath(path.steps[:cut]).signature() in sigs

    def test_sibling_expansion_budget_limits_paths(self):
        few = enumerate_paths(
            dblp_schema(),
            "Publish",
            PathEnumerationConfig(max_hops=7, max_sibling_expansions=1, max_start_revisits=3),
        )
        many = enumerate_paths(
            dblp_schema(),
            "Publish",
            PathEnumerationConfig(max_hops=7, max_sibling_expansions=3, max_start_revisits=3),
        )
        assert len(few) < len(many)

    def test_coauthor_of_coauthor_reachable_with_defaults(self):
        paths = enumerate_paths(
            dblp_schema(),
            "Publish",
            PathEnumerationConfig(max_hops=7, max_sibling_expansions=3, max_start_revisits=3),
        )
        target = "Publish~Publications~Publish~Authors~Publish~Publications~Publish~Authors"
        assert target in descriptions(paths)

    def test_max_paths_keeps_shortest(self):
        all_paths = enumerate_paths(dblp_schema(), "Publish", PathEnumerationConfig(max_hops=4))
        capped = enumerate_paths(
            dblp_schema(), "Publish", PathEnumerationConfig(max_hops=4, max_paths=3)
        )
        assert len(capped) == 3
        assert [p.signature() for p in capped] == [
            p.signature() for p in all_paths[:3]
        ]

    def test_deterministic_order(self):
        a = enumerate_paths(dblp_schema(), "Publish", PathEnumerationConfig(max_hops=4))
        b = enumerate_paths(dblp_schema(), "Publish", PathEnumerationConfig(max_hops=4))
        assert [p.signature() for p in a] == [p.signature() for p in b]

    def test_unknown_start_relation_raises(self):
        from repro.errors import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            enumerate_paths(dblp_schema(), "Nope")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PathEnumerationConfig(max_hops=0)
        with pytest.raises(ValueError):
            PathEnumerationConfig(max_sibling_expansions=-1)


class TestEnumerationWithVirtualRelations:
    def test_virtual_relations_are_terminal(self, prepared_schema):
        paths = enumerate_paths(
            prepared_schema, "Publish", PathEnumerationConfig(max_hops=7)
        )
        for path in paths:
            for relation in path.relation_sequence()[1:-1]:
                assert not is_virtual_relation(relation), path.describe()

    def test_value_paths_present(self, prepared_schema):
        paths = enumerate_paths(
            prepared_schema, "Publish", PathEnumerationConfig(max_hops=5)
        )
        descr = descriptions(paths)
        assert "Publish~Publications~Proceedings~_v_Proceedings_year" in descr
        assert (
            "Publish~Publications~Proceedings~Conferences~_v_Conferences_publisher"
            in descr
        )

    def test_paths_by_signature_round_trip(self, prepared_schema):
        paths = enumerate_paths(
            prepared_schema, "Publish", PathEnumerationConfig(max_hops=4)
        )
        index = paths_by_signature(paths)
        assert all(index[p.signature()] == p for p in paths)
