"""Path enumeration on the non-DBLP schemas (music, citations)."""

import pytest

from repro.data.dblp_schema import dblp_schema
from repro.data.music import generate_music_database
from repro.paths import PathEnumerationConfig, enumerate_paths
from repro.config import default_path_config


class TestMusicSchemaEnumeration:
    @pytest.fixture(scope="class")
    def music_schema(self):
        db, _ = generate_music_database()
        return db.schema

    def test_paths_enumerated(self, music_schema):
        paths = enumerate_paths(music_schema, "Credits", default_path_config())
        assert len(paths) > 10
        descriptions = {p.describe() for p in paths}
        # The co-credit (featuring) path — the music analogue of coauthors.
        assert "Credits~Tracks~Credits~Artists" in descriptions
        # The label path — the music analogue of the publisher.
        assert "Credits~Tracks~Albums~_v_Albums_label" in descriptions

    def test_artist_name_never_a_linkage(self, music_schema):
        paths = enumerate_paths(music_schema, "Credits", default_path_config())
        for path in paths:
            assert "_v_Artists_name" not in path.describe()


class TestCitationSchemaEnumeration:
    def test_both_citation_directions_distinct(self):
        schema = dblp_schema(with_citations=True)
        paths = enumerate_paths(
            schema, "Publish", PathEnumerationConfig(max_hops=3)
        )
        cites_sigs = [p.signature() for p in paths if "Cites" in p.signature()]
        # citing-direction and cited-direction paths have distinct signatures
        # even when the relation-level description looks identical.
        assert len(cites_sigs) == len(set(cites_sigs))
        assert any("[paper_key=citing]" in sig for sig in cites_sigs)
        assert any("[paper_key=cited]" in sig for sig in cites_sigs)

    def test_citation_budget_growth_is_bounded(self):
        base = enumerate_paths(dblp_schema(), "Publish", default_path_config())
        cited = enumerate_paths(
            dblp_schema(with_citations=True), "Publish", default_path_config()
        )
        assert len(base) < len(cited) <= 4 * len(base)


class TestStartRevisitBudget:
    def test_zero_revisits_blocks_coauthor_path(self):
        config = PathEnumerationConfig(max_hops=3, max_start_revisits=0)
        paths = enumerate_paths(dblp_schema(), "Publish", config)
        assert "Publish~Publications~Publish~Authors" not in {
            p.describe() for p in paths
        }

    def test_one_revisit_allows_coauthor_path(self):
        config = PathEnumerationConfig(max_hops=3, max_start_revisits=1)
        paths = enumerate_paths(dblp_schema(), "Publish", config)
        assert "Publish~Publications~Publish~Authors" in {
            p.describe() for p in paths
        }
