"""Batched sparse propagation vs the scalar engine on the mini DBLP DB.

Every test compares :func:`repro.paths.batch.batch_profile_matrices`
row-by-row against :meth:`PropagationEngine.propagate` — same exclusions,
same origin handling, same supports — at reassociation tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.paths import JoinPath, ProfileBuilder, PropagationEngine
from repro.paths.batch import batch_profile_matrices, merge_batched
from repro.paths.propagation import make_exclusions
from repro.perf.memo import FanoutMemo
from repro.reldb.joins import JoinStep

from tests.minidb import WW_AUTHOR_ROW, WW_REFS, build_minidb

PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
PUB_AUTH = JoinStep("Publish", "author_key", "Authors", "author_key", "n1")
PAP_PROC = JoinStep("Publications", "proc_key", "Proceedings", "proc_key", "n1")
PROC_CONF = JoinStep("Proceedings", "conf_key", "Conferences", "conf_key", "n1")

PATHS = [
    JoinPath([PUB_PAP]),
    JoinPath([PUB_PAP, PAP_PROC, PROC_CONF]),
    JoinPath([PUB_PAP, PUB_PAP.reverse(), PUB_AUTH]),
    JoinPath([PUB_PAP, PUB_PAP.reverse(), PUB_AUTH, PUB_AUTH.reverse(), PUB_PAP]),
]
EXCLUSIONS = make_exclusions(Authors={WW_AUTHOR_ROW})
ATOL = 1e-12


def assert_matches_scalar(engine: PropagationEngine, paths=PATHS, refs=WW_REFS):
    batched = batch_profile_matrices(engine, paths, list(refs))
    for path in paths:
        stacked = batched[path]
        assert stacked.rows == list(refs)
        for k, row in enumerate(refs):
            scalar = engine.propagate(path, row)
            got = stacked.weights_for(k)
            assert set(got) == set(scalar.forward)  # identical supports
            for t, fwd in scalar.forward.items():
                gf, gb = got[t]
                assert gf == pytest.approx(fwd, abs=ATOL)
                assert gb == pytest.approx(scalar.backward.get(t, 0.0), abs=ATOL)


class TestBatchMatchesScalar:
    def test_with_exclusions_and_origin_drop(self):
        assert_matches_scalar(PropagationEngine(build_minidb(), EXCLUSIONS))

    def test_without_global_exclusions(self):
        # origin exclusion still active: the shared author row is reachable
        assert_matches_scalar(PropagationEngine(build_minidb()))

    def test_exclude_origin_false(self):
        assert_matches_scalar(
            PropagationEngine(build_minidb(), EXCLUSIONS, exclude_origin=False)
        )

    def test_with_fanout_memo(self):
        engine = PropagationEngine(
            build_minidb(), EXCLUSIONS, memo=FanoutMemo(max_entries=1024)
        )
        assert_matches_scalar(engine)

    def test_single_reference_batch(self):
        assert_matches_scalar(
            PropagationEngine(build_minidb(), EXCLUSIONS), refs=[WW_REFS[0]]
        )

    def test_mixed_start_relations_rejected(self):
        engine = PropagationEngine(build_minidb(), EXCLUSIONS)
        other = JoinPath([PAP_PROC])
        with pytest.raises(ValueError, match="start"):
            batch_profile_matrices(engine, [PATHS[0], other], WW_REFS)

    def test_empty_paths(self):
        engine = PropagationEngine(build_minidb(), EXCLUSIONS)
        assert batch_profile_matrices(engine, [], WW_REFS) == {}


class TestBatchedProfilesContract:
    def test_backward_pattern_subset_of_forward(self):
        engine = PropagationEngine(build_minidb(), EXCLUSIONS)
        for stacked in batch_profile_matrices(engine, PATHS, WW_REFS).values():
            fwd = stacked.forward
            back = stacked.backward
            for k in range(fwd.shape[0]):
                f_cols = set(fwd.getrow(k).indices.tolist())
                b_cols = set(back.getrow(k).indices.tolist())
                assert b_cols <= f_cols

    def test_builder_matrices_for_equals_profiles(self):
        builder = ProfileBuilder(build_minidb(), PATHS, EXCLUSIONS)
        batched = builder.matrices_for(WW_REFS)
        for path in PATHS:
            for k, row in enumerate(WW_REFS):
                profile = builder.profile(path, row)
                got = batched[path].weights_for(k)
                assert set(got) == profile.support
                for t, (fwd, back) in got.items():
                    ef, eb = profile.weights[t]
                    assert fwd == pytest.approx(ef, abs=ATOL)
                    assert back == pytest.approx(eb, abs=ATOL)


class TestMergeBatched:
    def test_merge_restores_row_order(self):
        engine = PropagationEngine(build_minidb(), EXCLUSIONS)
        whole = batch_profile_matrices(engine, PATHS, WW_REFS)
        # split the batch in two and merge back in interleaved order
        part_a = batch_profile_matrices(engine, PATHS, [WW_REFS[1], WW_REFS[3]])
        part_b = batch_profile_matrices(engine, PATHS, [WW_REFS[0], WW_REFS[2]])
        merged = merge_batched(list(WW_REFS), [part_a, part_b])
        for path in PATHS:
            assert merged[path].rows == list(WW_REFS)
            np.testing.assert_allclose(
                merged[path].forward.toarray(),
                whole[path].forward.toarray(),
                rtol=0,
                atol=ATOL,
            )
            np.testing.assert_allclose(
                merged[path].backward.toarray(),
                whole[path].backward.toarray(),
                rtol=0,
                atol=ATOL,
            )
