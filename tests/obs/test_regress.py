"""Perf-regression observatory: baselines, verdicts, history parsing."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    DEFAULT_TOLERANCE,
    NO_BASELINE,
    OK,
    REGRESSION,
    compare_latest,
    load_history,
)

REPO_HISTORY = Path(__file__).resolve().parents[2] / "BENCH_history.jsonl"


def run(speedups: dict[str, float], tiny: bool = True, n_refs: int = 40,
        **extra) -> dict:
    entry = {
        "timestamp": "2026-08-07T00:00:00+00:00",
        "git_sha": "deadbeef",
        "tiny": tiny,
        "config": {"n_refs": n_refs},
        "speedups": speedups,
        "equivalent": True,
    }
    entry.update(extra)
    return entry


def history_with_slowdown(factor: float) -> list[dict]:
    """Five steady runs, then a latest whose kernels slowed by ``factor``."""
    steady = {"pair_kernels": 10.0, "propagation": 4.0}
    slowed = {k: v / factor for k, v in steady.items()}
    return [run(steady) for _ in range(5)] + [run(slowed)]


def by_section(report) -> dict:
    return {v.section: v for v in report.sections}


class TestVerdicts:
    def test_synthetic_2x_slowdown_is_flagged(self):
        report = compare_latest(history_with_slowdown(2.0))
        verdicts = by_section(report)
        assert verdicts["pair_kernels"].status == REGRESSION
        assert verdicts["propagation"].status == REGRESSION
        assert verdicts["pair_kernels"].ratio == pytest.approx(0.5)
        assert not report.ok

    def test_steady_history_passes(self):
        report = compare_latest(history_with_slowdown(1.0))
        assert report.ok
        assert all(v.status == OK for v in report.sections)

    def test_drop_within_tolerance_passes(self):
        # 25% below baseline < default 35% tolerance.
        report = compare_latest(history_with_slowdown(1.0 / 0.75))
        assert report.ok

    def test_improvement_never_flags(self):
        report = compare_latest(history_with_slowdown(0.5))
        assert report.ok

    def test_baseline_is_median_not_mean(self):
        # One absurd outlier run must not drag the baseline.
        history = [run({"pair_kernels": 10.0}) for _ in range(4)]
        history.append(run({"pair_kernels": 1000.0}))
        history.append(run({"pair_kernels": 8.0}))
        report = compare_latest(history)
        assert by_section(report)["pair_kernels"].baseline == 10.0
        assert report.ok


class TestBaselineSelection:
    def test_single_run_history_is_no_baseline_and_ok(self):
        report = compare_latest([run({"pair_kernels": 10.0})])
        assert by_section(report)["pair_kernels"].status == NO_BASELINE
        assert report.ok

    def test_incomparable_runs_excluded(self):
        # Full-corpus history must not judge a tiny run (and vice versa).
        history = [run({"pair_kernels": 50.0}, tiny=False, n_refs=150)
                   for _ in range(5)]
        history.append(run({"pair_kernels": 5.0}, tiny=True, n_refs=40))
        report = compare_latest(history)
        assert by_section(report)["pair_kernels"].status == NO_BASELINE
        assert report.n_comparable == 0

    def test_window_limits_baseline_depth(self):
        old = [run({"pair_kernels": 100.0}) for _ in range(5)]
        recent = [run({"pair_kernels": 10.0}) for _ in range(3)]
        report = compare_latest(old + recent + [run({"pair_kernels": 9.0})],
                                window=3)
        assert by_section(report)["pair_kernels"].baseline == 10.0
        assert report.ok

    def test_new_section_in_latest_is_no_baseline(self):
        history = [run({"pair_kernels": 10.0}) for _ in range(3)]
        history.append(run({"pair_kernels": 10.0, "brand_new": 2.0}))
        report = compare_latest(history)
        assert by_section(report)["brand_new"].status == NO_BASELINE
        assert report.ok

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            compare_latest([])

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            compare_latest([run({})], window=0)


class TestThresholds:
    def test_per_section_override(self):
        report = compare_latest(
            history_with_slowdown(2.0),
            thresholds={"pair_kernels": 0.6},  # 50% drop allowed here
        )
        verdicts = by_section(report)
        assert verdicts["pair_kernels"].status == OK
        assert verdicts["propagation"].status == REGRESSION

    def test_global_tolerance(self):
        assert compare_latest(history_with_slowdown(2.0), tolerance=0.6).ok

    def test_default_tolerance_flags_2x_but_not_modest_noise(self):
        assert DEFAULT_TOLERANCE < 0.5
        assert DEFAULT_TOLERANCE >= 0.2


class TestEquivalenceGate:
    def test_failed_equivalence_is_always_a_regression(self):
        history = history_with_slowdown(1.0)
        history[-1]["equivalent"] = False
        report = compare_latest(history)
        assert by_section(report)["equivalence"].status == REGRESSION
        assert not report.ok


class TestRendering:
    def test_render_marks_regressions(self):
        text = compare_latest(history_with_slowdown(2.0)).render()
        assert "REGRESSED" in text
        assert "regressed" in text.splitlines()[-1]

    def test_render_ok_verdict(self):
        text = compare_latest(history_with_slowdown(1.0)).render()
        assert text.splitlines()[-1] == "verdict: OK"

    def test_to_dict_is_json_serializable(self):
        payload = compare_latest(history_with_slowdown(2.0)).to_dict()
        assert json.loads(json.dumps(payload))["ok"] is False


class TestLoadHistory:
    def test_reads_jsonl_oldest_first(self, tmp_path):
        path = tmp_path / "h.jsonl"
        lines = [run({"pair_kernels": float(i)}) for i in range(3)]
        path.write_text("\n".join(json.dumps(entry) for entry in lines) + "\n")
        loaded = load_history(path)
        assert [e["speedups"]["pair_kernels"] for e in loaded] == [0.0, 1.0, 2.0]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("\n" + json.dumps(run({})) + "\n\n")
        assert len(load_history(path)) == 1

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps(run({})) + "\n{not json\n")
        with pytest.raises(ValueError, match=":2:"):
            load_history(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            load_history(path)


@pytest.mark.skipif(not REPO_HISTORY.exists(), reason="no repo bench history")
def test_real_repo_history_passes():
    """The acceptance gate: the observatory must pass on the actual history."""
    report = compare_latest(load_history(REPO_HISTORY))
    assert report.ok, report.render()
