"""Resource sampler: stdlib readings, gauges, per-span peak attribution."""

from __future__ import annotations

import time

import pytest

from repro.obs import disable_tracing, enable_tracing, get_metrics, span
from repro.obs.sampler import (
    ResourceSampler,
    cpu_seconds,
    current_rss_bytes,
    gc_collections,
    peak_rss_bytes,
)


@pytest.fixture(autouse=True)
def clean_obs():
    disable_tracing()
    get_metrics().reset()
    yield
    disable_tracing()
    get_metrics().reset()


class TestReadings:
    def test_rss_is_positive(self):
        assert current_rss_bytes() > 0
        assert peak_rss_bytes() > 0

    def test_peak_is_at_least_current(self):
        # ru_maxrss is a lifetime high-water mark; the instantaneous
        # reading can never exceed it.
        assert peak_rss_bytes() >= current_rss_bytes() * 0.5

    def test_cpu_seconds_monotone(self):
        a = cpu_seconds()
        sum(i * i for i in range(200_000))
        assert cpu_seconds() >= a >= 0.0

    def test_gc_collections_nonnegative(self):
        assert gc_collections() >= 0


class TestSampleOnce:
    def test_publishes_gauges_and_histogram(self):
        sampler = ResourceSampler(interval=10.0)
        rss = sampler.sample_once()
        snap = get_metrics().snapshot()
        assert snap["gauges"]["obs.sampler.rss_bytes"] == rss
        assert snap["gauges"]["obs.sampler.peak_rss_bytes"] > 0
        assert snap["gauges"]["obs.sampler.cpu_seconds"] > 0
        assert snap["gauges"]["obs.sampler.gc_collections"] >= 0
        assert snap["counters"]["obs.sampler.ticks"] == 1
        assert snap["histograms"]["obs.sampler.rss_sample_bytes"]["count"] == 1

    def test_attributes_peak_rss_to_open_spans_only(self):
        enable_tracing()
        sampler = ResourceSampler(interval=10.0)
        with span("outer"):
            with span("closed.child"):
                pass
            with span("open.child") as inner:
                rss = sampler.sample_once()
                assert inner.attrs["peak_rss_bytes"] >= rss * 0.5
            closed = inner
        # The child that was already closed at sample time is untouched.
        from repro.obs import get_tracer

        root = get_tracer().roots[0]
        assert root.attrs["peak_rss_bytes"] > 0
        assert "peak_rss_bytes" not in root.children[0].attrs
        assert "peak_rss_bytes" in closed.attrs

    def test_peak_attr_only_raises(self):
        enable_tracing()
        sampler = ResourceSampler(interval=10.0)
        with span("stage") as sp:
            sampler.sample_once()
            first = sp.attrs["peak_rss_bytes"]
            sp.attrs["peak_rss_bytes"] = first * 100  # simulate a larger peak
            sampler.sample_once()
            assert sp.attrs["peak_rss_bytes"] == first * 100

    def test_no_tracer_is_fine(self):
        assert ResourceSampler(interval=10.0).sample_once() > 0


class TestLifecycle:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval=0.0)

    def test_context_manager_samples_at_least_once(self):
        with ResourceSampler(interval=60.0) as sampler:
            assert sampler.running
        assert not sampler.running
        # stop() takes a final sample even when no tick elapsed.
        assert get_metrics().snapshot()["counters"]["obs.sampler.ticks"] >= 1

    def test_background_thread_ticks(self):
        with ResourceSampler(interval=0.005):
            time.sleep(0.05)
        assert get_metrics().snapshot()["counters"]["obs.sampler.ticks"] >= 2

    def test_start_stop_idempotent(self):
        sampler = ResourceSampler(interval=60.0)
        assert sampler.start() is sampler.start()
        sampler.stop()
        sampler.stop()
        assert not sampler.running

    def test_restartable(self):
        sampler = ResourceSampler(interval=60.0)
        sampler.start()
        sampler.stop()
        sampler.start()
        assert sampler.running
        sampler.stop()
