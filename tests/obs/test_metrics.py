"""Counter / gauge / histogram semantics and registry behavior."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    get_metrics,
)


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_registry_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")

    def test_global_shorthand_binds_to_global_registry(self):
        c = counter("tests.obs.shorthand")
        assert get_metrics().counter("tests.obs.shorthand") is c


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 10.0, 99.0, 1000.0):
            h.observe(v)
        # <=1: {0.5, 1.0}; <=10: {5.0, 10.0}; <=100: {99.0}; overflow: {1000.0}
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.sum == pytest.approx(0.5 + 1.0 + 5.0 + 10.0 + 99.0 + 1000.0)
        assert h.mean == pytest.approx(h.sum / 6)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_empty_histogram_mean(self):
        assert Histogram("h").mean == 0.0

    def test_value_exactly_on_bucket_bound_lands_in_that_bucket(self):
        # ``le`` semantics: the bound belongs to its own bucket, not the
        # next one — this is what OpenMetrics exposition assumes.
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        h.observe(2.0)
        assert h.counts == [1, 1, 0]


class TestThreadSafety:
    N_THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, fn):
        threads = [
            threading.Thread(target=fn) for _ in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_concurrent_counter_incs_are_not_lost(self):
        c = Counter("c")
        self._hammer(lambda: [c.inc() for _ in range(self.PER_THREAD)])
        assert c.value == self.N_THREADS * self.PER_THREAD

    def test_concurrent_gauge_inc_dec_balances(self):
        g = Gauge("g")

        def work():
            for _ in range(self.PER_THREAD):
                g.inc(3)
                g.dec(3)

        self._hammer(work)
        assert g.value == 0

    def test_concurrent_histogram_observes_consistent(self):
        h = Histogram("h", buckets=(0.5,))
        self._hammer(lambda: [h.observe(1.0) for _ in range(self.PER_THREAD)])
        total = self.N_THREADS * self.PER_THREAD
        assert h.count == total
        assert h.counts == [0, total]
        assert h.sum == pytest.approx(float(total))


class TestRegistry:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 2}
        assert snap["histograms"]["h"] == {
            "buckets": [1.0],
            "counts": [1, 0],
            "sum": 0.5,
            "count": 1,
        }

    def test_reset_zeroes_in_place_preserving_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        g = reg.gauge("g")
        h = reg.histogram("h", buckets=(1.0,))
        c.inc(5)
        g.set(5)
        h.observe(0.5)
        reg.reset()
        # Pre-bound instruments (module-level in hot paths) must survive.
        assert reg.counter("c") is c
        assert c.value == 0
        assert g.value == 0
        assert h.counts == [0, 0]
        assert h.count == 0 and h.sum == 0.0
        c.inc()
        assert reg.snapshot()["counters"]["c"] == 1

    def test_reset_preserves_identity_under_a_live_sampler(self):
        # The sampler binds its instruments at import time; a registry
        # reset mid-run must zero them without orphaning those bindings.
        from repro.obs.sampler import ResourceSampler

        reg = get_metrics()
        saved = reg.snapshot()
        sampler = ResourceSampler(interval=60.0)
        try:
            sampler.sample_once()
            assert reg.counter("obs.sampler.ticks").value >= 1
            reg.reset()
            assert reg.counter("obs.sampler.ticks").value == 0
            sampler.sample_once()
            snap = reg.snapshot()
            assert snap["counters"]["obs.sampler.ticks"] == 1
            assert snap["gauges"]["obs.sampler.rss_bytes"] > 0
        finally:
            # Other tests assert on cumulative global counters; put the
            # pre-test values back (histograms stay zeroed — nothing
            # asserts on their cumulative global state).
            reg.reset()
            for name, value in saved["counters"].items():
                if value:
                    reg.counter(name).inc(value)
            for name, value in saved["gauges"].items():
                if value:
                    reg.gauge(name).set(value)


class TestPipelineCounters:
    """The instrumented hot paths feed the documented global counters."""

    def test_resolve_populates_counters(self, fitted):
        reg = get_metrics()
        before = {
            name: reg.counter(name).value
            for name in (
                "pairs.scored",
                "propagation.tuples_visited",
                "cluster.merges",
                "cluster.runs",
                "similarity.resemblance.calls",
                "similarity.walk.calls",
                "profiles.cache_misses",
            )
        }
        fitted.resolve("Wei Wang")
        for name, prior in before.items():
            assert reg.counter(name).value > prior, name

    def test_fit_populates_svm_and_path_counters(self, fitted):
        # ``fitted`` already ran fit(); counters are cumulative.
        reg = get_metrics()
        assert reg.counter("svm.fits").value > 0
        assert reg.counter("svm.iterations").value > 0
        assert reg.counter("paths.enumerated").value > 0
        assert reg.counter("trainingset.pairs_built").value > 0
