"""JSON export round-trip and the human-readable tree report."""

import json

import pytest

from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    load_trace,
    render_tree,
    span_to_dict,
    trace_payload,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import disable_tracing, enable_tracing, span


@pytest.fixture(autouse=True)
def clean_tracer():
    disable_tracing()
    yield
    disable_tracing()


def _sample_run():
    """A small trace + metrics, as one run of the pipeline would leave."""
    tracer = enable_tracing()
    metrics = MetricsRegistry()
    with span("resolve", command="resolve") as root:
        with span("resolve.profiles", name="Wei Wang", n_refs=3) as sp:
            sp.add("propagations", 81)
        with span("resolve.cluster", min_sim=0.006):
            metrics.counter("cluster.merges").inc(2)
    metrics.counter("pairs.scored").inc(3)
    metrics.histogram("resolve.seconds", buckets=(0.1, 1.0)).observe(0.05)
    root.annotate(done=True)
    return tracer, metrics


class TestSpanToDict:
    def test_structure(self):
        tracer, _ = _sample_run()
        d = span_to_dict(tracer.roots[0])
        assert d["name"] == "resolve"
        assert d["attrs"] == {"command": "resolve", "done": True}
        assert d["duration_s"] >= 0
        child_names = [c["name"] for c in d["children"]]
        assert child_names == ["resolve.profiles", "resolve.cluster"]
        assert d["children"][0]["counters"] == {"propagations": 81}


class TestRoundTrip:
    def test_write_then_load_is_identity(self, tmp_path):
        tracer, metrics = _sample_run()
        payload = trace_payload(tracer, metrics)
        path = write_trace(tmp_path / "sub" / "trace.json", tracer, metrics)
        assert path.exists()  # parents created
        loaded = load_trace(path)
        assert loaded == json.loads(json.dumps(payload))
        assert loaded["version"] == TRACE_FORMAT_VERSION
        assert loaded["metrics"]["counters"]["pairs.scored"] == 3
        hist = loaded["metrics"]["histograms"]["resolve.seconds"]
        assert hist["counts"] == [1, 0, 0]

    def test_load_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "spans": []}))
        with pytest.raises(ValueError, match="version"):
            load_trace(bad)

    def test_payload_without_tracer_is_valid(self):
        payload = trace_payload(None, MetricsRegistry())
        assert payload["spans"] == []
        assert "counters" in payload["metrics"]


class TestRenderTree:
    def test_tree_shows_nesting_durations_and_metrics(self):
        tracer, metrics = _sample_run()
        text = render_tree(trace_payload(tracer, metrics))
        lines = text.splitlines()
        assert lines[0].startswith("resolve")
        assert lines[1].startswith("  resolve.profiles")
        assert "name=Wei Wang" in lines[1]
        assert "propagations:81" in lines[1]
        assert any(u in lines[0] for u in ("us", "ms", "s"))
        assert "counters:" in text
        assert "pairs.scored" in text
        assert "resolve.seconds" in text  # histogram summary

    def test_zero_metrics_are_omitted(self):
        tracer = enable_tracing()
        metrics = MetricsRegistry()
        metrics.counter("never.incremented")
        with span("root"):
            pass
        text = render_tree(trace_payload(tracer, metrics))
        assert "never.incremented" not in text
