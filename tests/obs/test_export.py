"""JSON export round-trip, tree report, hot spans, and phase timeline."""

import json

import pytest

from repro.obs.export import (
    TRACE_FORMAT_VERSION,
    hot_spans,
    load_trace,
    render_hot_spans,
    render_phase_timeline,
    render_tree,
    span_to_dict,
    trace_payload,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import disable_tracing, enable_tracing, span


@pytest.fixture(autouse=True)
def clean_tracer():
    disable_tracing()
    yield
    disable_tracing()


def _sample_run():
    """A small trace + metrics, as one run of the pipeline would leave."""
    tracer = enable_tracing()
    metrics = MetricsRegistry()
    with span("resolve", command="resolve") as root:
        with span("resolve.profiles", name="Wei Wang", n_refs=3) as sp:
            sp.add("propagations", 81)
        with span("resolve.cluster", min_sim=0.006):
            metrics.counter("cluster.merges").inc(2)
    metrics.counter("pairs.scored").inc(3)
    metrics.histogram("resolve.seconds", buckets=(0.1, 1.0)).observe(0.05)
    root.annotate(done=True)
    return tracer, metrics


class TestSpanToDict:
    def test_structure(self):
        tracer, _ = _sample_run()
        d = span_to_dict(tracer.roots[0])
        assert d["name"] == "resolve"
        assert d["attrs"] == {"command": "resolve", "done": True}
        assert d["duration_s"] >= 0
        child_names = [c["name"] for c in d["children"]]
        assert child_names == ["resolve.profiles", "resolve.cluster"]
        assert d["children"][0]["counters"] == {"propagations": 81}


class TestRoundTrip:
    def test_write_then_load_is_identity(self, tmp_path):
        tracer, metrics = _sample_run()
        payload = trace_payload(tracer, metrics)
        path = write_trace(tmp_path / "sub" / "trace.json", tracer, metrics)
        assert path.exists()  # parents created
        loaded = load_trace(path)
        assert loaded == json.loads(json.dumps(payload))
        assert loaded["version"] == TRACE_FORMAT_VERSION
        assert loaded["metrics"]["counters"]["pairs.scored"] == 3
        hist = loaded["metrics"]["histograms"]["resolve.seconds"]
        assert hist["counts"] == [1, 0, 0]

    def test_load_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "spans": []}))
        with pytest.raises(ValueError, match="version"):
            load_trace(bad)

    def test_payload_without_tracer_is_valid(self):
        payload = trace_payload(None, MetricsRegistry())
        assert payload["spans"] == []
        assert "counters" in payload["metrics"]


class TestRenderTree:
    def test_tree_shows_nesting_durations_and_metrics(self):
        tracer, metrics = _sample_run()
        text = render_tree(trace_payload(tracer, metrics))
        lines = text.splitlines()
        assert lines[0].startswith("resolve")
        assert lines[1].startswith("  resolve.profiles")
        assert "name=Wei Wang" in lines[1]
        assert "propagations:81" in lines[1]
        assert any(u in lines[0] for u in ("us", "ms", "s"))
        assert "counters:" in text
        assert "pairs.scored" in text
        assert "resolve.seconds" in text  # histogram summary

    def test_zero_metrics_are_omitted(self):
        tracer = enable_tracing()
        metrics = MetricsRegistry()
        metrics.counter("never.incremented")
        with span("root"):
            pass
        text = render_tree(trace_payload(tracer, metrics))
        assert "never.incremented" not in text


class TestStartOffsets:
    def test_spans_carry_start_s_offsets_from_trace_epoch(self):
        tracer, metrics = _sample_run()
        payload = trace_payload(tracer, metrics)
        root = payload["spans"][0]
        assert root["start_s"] == 0.0  # the earliest root is the epoch
        children = root["children"]
        assert 0.0 <= children[0]["start_s"] <= children[1]["start_s"]
        assert children[1]["start_s"] <= root["duration_s"] + 1e-6

    def test_span_to_dict_without_epoch_omits_start_s(self):
        tracer, _ = _sample_run()
        assert "start_s" not in span_to_dict(tracer.roots[0])


TIMELINE_PAYLOAD = {
    "version": 1,
    "spans": [{
        "name": "experiment", "start_s": 0.0, "duration_s": 1.0,
        "children": [
            {"name": "prepare", "start_s": 0.0, "duration_s": 0.6,
             "children": [
                 {"name": "kernel", "start_s": 0.1, "duration_s": 0.5,
                  "children": []},
             ]},
            {"name": "cluster", "start_s": 0.6, "duration_s": 0.2,
             "children": []},
            {"name": "cluster", "start_s": 0.8, "duration_s": 0.2,
             "children": []},
        ],
    }],
    "metrics": {},
}


class TestHotSpans:
    def test_aggregates_by_name_sorted_by_total(self):
        entries = hot_spans(TIMELINE_PAYLOAD)
        assert [e["name"] for e in entries] == [
            "experiment", "prepare", "kernel", "cluster",
        ]
        cluster = entries[-1]
        assert cluster["count"] == 2
        assert cluster["total_s"] == pytest.approx(0.4)
        assert cluster["max_s"] == pytest.approx(0.2)

    def test_self_time_excludes_children(self):
        entries = {e["name"]: e for e in hot_spans(TIMELINE_PAYLOAD)}
        assert entries["experiment"]["self_s"] == pytest.approx(0.0)
        assert entries["prepare"]["self_s"] == pytest.approx(0.1)
        assert entries["kernel"]["self_s"] == pytest.approx(0.5)

    def test_top_truncates(self):
        assert len(hot_spans(TIMELINE_PAYLOAD, top=2)) == 2

    def test_render_table(self):
        text = render_hot_spans(TIMELINE_PAYLOAD, top=3)
        assert text.splitlines()[0] == "top 3 spans by total wall time:"
        assert "experiment" in text
        assert "cluster" not in text  # truncated at 3

    def test_empty_payload(self):
        assert render_hot_spans({"spans": []}) == "no spans recorded"


class TestPhaseTimeline:
    def test_bars_positioned_by_start_offset(self):
        text = render_phase_timeline(TIMELINE_PAYLOAD, width=10)
        lines = text.splitlines()
        assert lines[0].startswith("experiment")
        prepare = next(l for l in lines if "prepare" in l)
        cluster = next(l for l in lines if "cluster" in l)
        # prepare starts at the left edge; the first cluster at 60%.
        assert "|######" in prepare
        assert "|      ##" in cluster

    def test_fallback_layout_without_start_s(self):
        payload = {
            "spans": [{
                "name": "root", "duration_s": 1.0,
                "children": [
                    {"name": "a", "duration_s": 0.5, "children": []},
                    {"name": "b", "duration_s": 0.5, "children": []},
                ],
            }],
        }
        lines = render_phase_timeline(payload, width=8).splitlines()
        assert "|####    |" in lines[1]
        assert "|    ####|" in lines[2]

    def test_empty_payload(self):
        assert render_phase_timeline({"spans": []}) == "no spans recorded"
