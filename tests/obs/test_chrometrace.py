"""Chrome trace-event export: event shape, worker tracks, timeline layout."""

from __future__ import annotations

import json

import pytest

from repro.obs import disable_tracing, enable_tracing, span, trace_payload
from repro.obs.chrometrace import MAIN_PID, chrome_trace_events, write_chrome_trace


@pytest.fixture(autouse=True)
def clean_tracer():
    disable_tracing()
    yield
    disable_tracing()


def recorded_payload() -> dict:
    enable_tracing()
    with span("resolve", name="Wei Wang"):
        with span("resolve.prepare") as sp:
            sp.add("pairs.scored", 3)
        with span("resolve.cluster"):
            pass
    return trace_payload()


def events_of(doc: dict, name: str) -> list[dict]:
    return [e for e in doc["traceEvents"] if e.get("name") == name]


class TestEventShape:
    def test_one_complete_event_per_span(self):
        doc = chrome_trace_events(recorded_payload())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "resolve", "resolve.prepare", "resolve.cluster",
        }

    def test_microsecond_ts_and_dur(self):
        payload = recorded_payload()
        doc = chrome_trace_events(payload)
        root = events_of(doc, "resolve")[0]
        assert root["dur"] == pytest.approx(
            payload["spans"][0]["duration_s"] * 1e6, rel=1e-6
        )
        prepare = events_of(doc, "resolve.prepare")[0]
        assert prepare["ts"] >= root["ts"]
        assert prepare["ts"] + prepare["dur"] <= root["ts"] + root["dur"] + 1

    def test_attrs_and_counters_in_args(self):
        doc = chrome_trace_events(recorded_payload())
        root = events_of(doc, "resolve")[0]
        assert root["args"]["name"] == "Wei Wang"
        prepare = events_of(doc, "resolve.prepare")[0]
        assert prepare["args"]["counter.pairs.scored"] == 3

    def test_main_process_metadata(self):
        doc = chrome_trace_events(recorded_payload())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {"pid": MAIN_PID, "args": {"name": "repro"}}.items() <= {
            "pid": meta[0]["pid"], "args": meta[0]["args"],
        }.items()

    def test_display_time_unit(self):
        assert chrome_trace_events({"spans": []})["displayTimeUnit"] == "ms"


class TestWorkerTracks:
    def worker_payload(self) -> dict:
        # The shape perf.parallel grafting produces: a worker subtree
        # annotated with worker/worker_pid under the parent span.
        return {
            "version": 1,
            "spans": [{
                "name": "experiment.resilient", "start_s": 0.0,
                "duration_s": 1.0,
                "children": [
                    {"name": "task", "start_s": 0.1, "duration_s": 0.4,
                     "attrs": {"worker": 0, "worker_pid": 4242},
                     "children": [
                         {"name": "task.inner", "start_s": 0.2,
                          "duration_s": 0.1, "children": []},
                     ]},
                ],
            }],
            "metrics": {},
        }

    def test_worker_subtree_gets_its_own_pid_track(self):
        doc = chrome_trace_events(self.worker_payload())
        assert events_of(doc, "experiment.resilient")[0]["pid"] == MAIN_PID
        assert events_of(doc, "task")[0]["pid"] == 4242
        # Children inherit the worker track without repeating the attr.
        assert events_of(doc, "task.inner")[0]["pid"] == 4242

    def test_worker_track_labeled(self):
        doc = chrome_trace_events(self.worker_payload())
        labels = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert labels[4242] == "worker 4242"
        assert labels[MAIN_PID] == "repro"


class TestFallbackLayout:
    def test_spans_without_start_s_laid_end_to_end(self):
        payload = {
            "version": 1,
            "spans": [{
                "name": "root", "duration_s": 1.0,
                "children": [
                    {"name": "a", "duration_s": 0.25, "children": []},
                    {"name": "b", "duration_s": 0.5, "children": []},
                ],
            }],
            "metrics": {},
        }
        doc = chrome_trace_events(payload)
        a = events_of(doc, "a")[0]
        b = events_of(doc, "b")[0]
        assert a["ts"] == 0.0
        assert b["ts"] == pytest.approx(0.25e6)


class TestWrite:
    def test_written_file_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "sub" / "t.json", recorded_payload())
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
