"""Span nesting, timing, no-op mode, and thread isolation."""

import threading
import time

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    timed,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    disable_tracing()
    yield
    disable_tracing()


class TestNesting:
    def test_parent_child_structure(self):
        tracer = enable_tracing()
        with span("outer") as outer:
            with span("inner.a"):
                pass
            with span("inner.b") as b:
                with span("leaf"):
                    pass
        assert [r.name for r in tracer.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in b.children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = enable_tracing()
        with span("first"):
            pass
        with span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_current_span_tracks_innermost(self):
        enable_tracing()
        assert current_span() is NOOP_SPAN
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is NOOP_SPAN

    def test_find_and_walk(self):
        enable_tracing()
        with span("root") as root:
            with span("a"):
                with span("target"):
                    pass
            with span("b"):
                pass
        assert root.find("target").name == "target"
        assert root.find("missing") is None
        assert [s.name for s in root.walk()] == ["root", "a", "target", "b"]


class TestTiming:
    def test_duration_measures_wall_time(self):
        enable_tracing()
        with span("sleepy") as sp:
            time.sleep(0.01)
        assert sp.duration >= 0.009
        assert sp.end is not None

    def test_children_within_parent_duration(self):
        enable_tracing()
        with span("outer") as outer:
            with span("inner") as inner:
                time.sleep(0.005)
        assert outer.duration >= inner.duration

    def test_attrs_and_counters(self):
        enable_tracing()
        with span("stage", key="val") as sp:
            sp.annotate(extra=3)
            sp.add("events")
            sp.add("events", 2)
        assert sp.attrs == {"key": "val", "extra": 3}
        assert sp.counters == {"events": 3}

    def test_exception_marks_span_and_closes_it(self):
        tracer = enable_tracing()
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.attrs.get("error") is True
        assert root.end is not None
        assert current_span() is NOOP_SPAN


class TestNoopMode:
    def test_disabled_returns_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything") is NOOP_SPAN
        assert span("other", attr=1) is NOOP_SPAN

    def test_noop_supports_span_surface(self):
        with span("x") as sp:
            sp.annotate(a=1)
            sp.add("c", 5)
        assert sp is NOOP_SPAN
        assert sp.duration == 0.0
        assert sp.attrs == {}
        assert sp.counters == {}

    def test_enable_disable_roundtrip(self):
        assert get_tracer() is None
        tracer = enable_tracing()
        assert get_tracer() is tracer
        assert tracing_enabled()
        disable_tracing()
        assert get_tracer() is None

    def test_enable_twice_gives_fresh_tracer(self):
        first = enable_tracing()
        with span("old"):
            pass
        second = enable_tracing()
        assert second is not first
        assert second.roots == []


class TestTimed:
    def test_timed_measures_without_tracer(self):
        assert not tracing_enabled()
        with timed("phase") as t:
            time.sleep(0.01)
        assert t.duration >= 0.009

    def test_timed_records_span_when_enabled(self):
        tracer = enable_tracing()
        with timed("phase") as t:
            pass
        assert [r.name for r in tracer.roots] == ["phase"]
        assert t.duration >= 0.0


class TestThreads:
    def test_threads_get_independent_stacks(self):
        tracer = enable_tracing()
        errors = []

        def worker(tag):
            try:
                with span(f"root.{tag}") as sp:
                    time.sleep(0.005)
                    assert current_span() is sp
                    with span(f"child.{tag}"):
                        time.sleep(0.005)
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tracer.roots) == 4
        for root in tracer.roots:
            assert len(root.children) == 1


class TestTracerApi:
    def test_manual_start_finish(self):
        tracer = Tracer()
        sp = tracer.start("manual")
        child = tracer.start("child")
        tracer.finish(child)
        tracer.finish(sp)
        assert sp.children == [child]
        assert sp.end is not None
