"""Span nesting, timing, no-op mode, thread isolation, wire transport."""

import threading
import time

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    span_from_wire,
    span_to_wire,
    timed,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    disable_tracing()
    yield
    disable_tracing()


class TestNesting:
    def test_parent_child_structure(self):
        tracer = enable_tracing()
        with span("outer") as outer:
            with span("inner.a"):
                pass
            with span("inner.b") as b:
                with span("leaf"):
                    pass
        assert [r.name for r in tracer.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in b.children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = enable_tracing()
        with span("first"):
            pass
        with span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_current_span_tracks_innermost(self):
        enable_tracing()
        assert current_span() is NOOP_SPAN
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is NOOP_SPAN

    def test_find_and_walk(self):
        enable_tracing()
        with span("root") as root:
            with span("a"):
                with span("target"):
                    pass
            with span("b"):
                pass
        assert root.find("target").name == "target"
        assert root.find("missing") is None
        assert [s.name for s in root.walk()] == ["root", "a", "target", "b"]


class TestTiming:
    def test_duration_measures_wall_time(self):
        enable_tracing()
        with span("sleepy") as sp:
            time.sleep(0.01)
        assert sp.duration >= 0.009
        assert sp.end is not None

    def test_children_within_parent_duration(self):
        enable_tracing()
        with span("outer") as outer:
            with span("inner") as inner:
                time.sleep(0.005)
        assert outer.duration >= inner.duration

    def test_attrs_and_counters(self):
        enable_tracing()
        with span("stage", key="val") as sp:
            sp.annotate(extra=3)
            sp.add("events")
            sp.add("events", 2)
        assert sp.attrs == {"key": "val", "extra": 3}
        assert sp.counters == {"events": 3}

    def test_exception_marks_span_and_closes_it(self):
        tracer = enable_tracing()
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.attrs.get("error") is True
        assert root.attrs.get("error_type") == "RuntimeError"
        assert root.end is not None
        assert current_span() is NOOP_SPAN

    def test_exception_marks_only_the_failing_frame_is_exception_typed(self):
        tracer = enable_tracing()
        with pytest.raises(KeyError):
            with span("outer"):
                with span("inner"):
                    raise KeyError("missing")
        (root,) = tracer.roots
        # Both spans were open when the exception unwound through them.
        assert root.attrs["error_type"] == "KeyError"
        assert root.children[0].attrs["error_type"] == "KeyError"

    def test_clean_exit_has_no_error_attrs(self):
        enable_tracing()
        with span("fine") as sp:
            pass
        assert "error" not in sp.attrs
        assert "error_type" not in sp.attrs


class TestNoopMode:
    def test_disabled_returns_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything") is NOOP_SPAN
        assert span("other", attr=1) is NOOP_SPAN

    def test_noop_supports_span_surface(self):
        with span("x") as sp:
            sp.annotate(a=1)
            sp.add("c", 5)
        assert sp is NOOP_SPAN
        assert sp.duration == 0.0
        assert sp.attrs == {}
        assert sp.counters == {}

    def test_enable_disable_roundtrip(self):
        assert get_tracer() is None
        tracer = enable_tracing()
        assert get_tracer() is tracer
        assert tracing_enabled()
        disable_tracing()
        assert get_tracer() is None

    def test_enable_twice_gives_fresh_tracer(self):
        first = enable_tracing()
        with span("old"):
            pass
        second = enable_tracing()
        assert second is not first
        assert second.roots == []


class TestTimed:
    def test_timed_measures_without_tracer(self):
        assert not tracing_enabled()
        with timed("phase") as t:
            time.sleep(0.01)
        assert t.duration >= 0.009

    def test_timed_records_span_when_enabled(self):
        tracer = enable_tracing()
        with timed("phase") as t:
            pass
        assert [r.name for r in tracer.roots] == ["phase"]
        assert t.duration >= 0.0


class TestThreads:
    def test_threads_get_independent_stacks(self):
        tracer = enable_tracing()
        errors = []

        def worker(tag):
            try:
                with span(f"root.{tag}") as sp:
                    time.sleep(0.005)
                    assert current_span() is sp
                    with span(f"child.{tag}"):
                        time.sleep(0.005)
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tracer.roots) == 4
        for root in tracer.roots:
            assert len(root.children) == 1


class TestTracerApi:
    def test_manual_start_finish(self):
        tracer = Tracer()
        sp = tracer.start("manual")
        child = tracer.start("child")
        tracer.finish(child)
        tracer.finish(sp)
        assert sp.children == [child]
        assert sp.end is not None


class TestWire:
    def recorded_root(self):
        tracer = enable_tracing()
        with span("task", item=7) as root:
            root.add("pairs", 3)
            with span("task.inner"):
                time.sleep(0.002)
        return tracer.roots[0]

    def test_round_trip_preserves_structure_and_timing(self):
        root = self.recorded_root()
        back = span_from_wire(span_to_wire(root))
        assert back.name == "task"
        assert back.attrs == {"item": 7}
        assert back.counters == {"pairs": 3.0}
        assert back.start == root.start
        assert back.end == root.end
        assert [c.name for c in back.children] == ["task.inner"]
        assert back.children[0].duration == pytest.approx(
            root.children[0].duration
        )

    def test_wire_form_is_plain_data(self):
        import json

        payload = span_to_wire(self.recorded_root())
        assert json.loads(json.dumps(payload)) == payload

    def test_open_span_serialized_as_if_closed(self):
        tracer = Tracer()
        sp = tracer.start("open")
        time.sleep(0.002)
        wire = span_to_wire(sp)
        assert wire["end"] >= wire["start"]
        assert span_from_wire(wire).end is not None


class TestGraft:
    def test_graft_under_open_span(self):
        tracer = enable_tracing()
        subtree = span_from_wire(span_to_wire(Tracer().start("worker.task")))
        with span("parent") as parent:
            assert tracer.graft(subtree) is subtree
        assert parent.children == [subtree]

    def test_graft_without_open_span_becomes_root(self):
        tracer = enable_tracing()
        subtree = span_from_wire(span_to_wire(Tracer().start("worker.task")))
        tracer.graft(subtree)
        assert subtree in tracer.roots

    def test_graft_does_not_disturb_the_open_stack(self):
        tracer = enable_tracing()
        subtree = span_from_wire(span_to_wire(Tracer().start("worker.task")))
        with span("parent") as parent:
            tracer.graft(subtree)
            with span("sibling") as sib:
                pass
        assert parent.children == [subtree, sib]
