"""Structured logging: setup idempotency and JSON-lines output."""

import io
import json
import logging

import pytest

from repro.obs.logging import JsonLinesFormatter, get_logger, setup_logging


@pytest.fixture(autouse=True)
def restore_logging():
    yield
    # Leave the suite with the quiet default so other tests see no output.
    setup_logging(level="WARNING", stream=io.StringIO())


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("core.distinct").name == "repro.core.distinct"
        assert get_logger().name == "repro"

    def test_children_propagate_to_repro_handler(self):
        stream = io.StringIO()
        setup_logging(level="INFO", stream=stream)
        get_logger("paths.enumerate").info("hello %d", 7)
        assert "hello 7" in stream.getvalue()
        assert "repro.paths.enumerate" in stream.getvalue()


class TestSetupLogging:
    def test_idempotent_no_duplicate_handlers(self):
        stream = io.StringIO()
        setup_logging(level="INFO", stream=stream)
        setup_logging(level="INFO", stream=stream)
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1

    def test_level_filtering(self):
        stream = io.StringIO()
        setup_logging(level="WARNING", stream=stream)
        get_logger("x").info("hidden")
        get_logger("x").warning("shown")
        out = stream.getvalue()
        assert "hidden" not in out
        assert "shown" in out

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging(level="LOUD")


class TestJsonLines:
    def test_records_are_one_json_object_per_line(self):
        stream = io.StringIO()
        setup_logging(level="INFO", json_lines=True, stream=stream)
        log = get_logger("eval.experiment")
        log.info("prepared %d names", 10)
        log.warning("slow name", extra={"author": "Wei Wang", "seconds": 1.5})
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["message"] == "prepared 10 names"
        assert first["level"] == "INFO"
        assert first["logger"] == "repro.eval.experiment"
        assert isinstance(first["ts"], float)
        # extra={} fields are inlined into the payload.
        assert second["author"] == "Wei Wang"
        assert second["seconds"] == 1.5

    def test_exception_info_serialized(self):
        formatter = JsonLinesFormatter()
        try:
            raise ValueError("boom")
        except ValueError:
            record = logging.LogRecord(
                "repro.t", logging.ERROR, __file__, 1, "failed", (), True
            )
            import sys

            record.exc_info = sys.exc_info()
        payload = json.loads(formatter.format(record))
        assert "boom" in payload["exc_info"]
