"""OpenMetrics exposition: format conformance and the render/parse round-trip."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("pairs.scored").inc(630)
    reg.counter("cluster.merges").inc(35)
    reg.gauge("perf.fanout.size").set(17)
    hist = reg.histogram("resolve.seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(v)
    return reg


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("pairs.scored") == "repro_pairs_scored"

    def test_invalid_chars_sanitized(self):
        assert metric_name("a b-c.d") == "repro_a_b_c_d"

    def test_custom_prefix(self):
        assert metric_name("x", prefix="p_") == "p_x"


class TestRender:
    def test_counter_exposed_with_total_suffix(self):
        text = render_openmetrics(registry=populated_registry())
        assert "# TYPE repro_pairs_scored counter" in text
        assert "repro_pairs_scored_total 630" in text

    def test_gauge_exposed_bare(self):
        text = render_openmetrics(registry=populated_registry())
        assert "# TYPE repro_perf_fanout_size gauge" in text
        assert "repro_perf_fanout_size 17" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_openmetrics(registry=populated_registry())
        lines = text.splitlines()
        assert 'repro_resolve_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_resolve_seconds_bucket{le="1"} 3' in lines
        assert 'repro_resolve_seconds_bucket{le="10"} 4' in lines
        assert 'repro_resolve_seconds_bucket{le="+Inf"} 5' in lines
        assert "repro_resolve_seconds_count 5" in lines

    def test_ends_with_eof(self):
        assert render_openmetrics(registry=populated_registry()).endswith(
            "# EOF\n"
        )

    def test_snapshot_from_saved_trace_document(self):
        snapshot = populated_registry().snapshot()
        assert render_openmetrics(snapshot=snapshot) == render_openmetrics(
            registry=populated_registry()
        )

    def test_families_sorted(self):
        text = render_openmetrics(registry=populated_registry())
        merges = text.index("repro_cluster_merges_total")
        pairs = text.index("repro_pairs_scored_total")
        assert merges < pairs


class TestRoundTrip:
    def test_counters_and_gauges_survive(self):
        reg = populated_registry()
        back = parse_openmetrics(render_openmetrics(registry=reg))
        assert back["counters"]["repro_pairs_scored"] == 630
        assert back["counters"]["repro_cluster_merges"] == 35
        assert back["gauges"]["repro_perf_fanout_size"] == 17

    def test_histogram_survives_decumulated(self):
        reg = populated_registry()
        back = parse_openmetrics(render_openmetrics(registry=reg))
        hist = back["histograms"]["repro_resolve_seconds"]
        original = reg.snapshot()["histograms"]["resolve.seconds"]
        assert hist["buckets"] == original["buckets"]
        assert hist["counts"] == original["counts"]
        assert hist["sum"] == pytest.approx(original["sum"])
        assert hist["count"] == original["count"]

    def test_render_parse_render_is_stable(self):
        first = render_openmetrics(registry=populated_registry())
        again = render_openmetrics(
            snapshot=parse_openmetrics(first), prefix=""
        )
        back = parse_openmetrics(again)
        assert back["counters"]["repro_pairs_scored"] == 630

    def test_empty_registry_round_trips(self):
        text = render_openmetrics(registry=MetricsRegistry())
        assert parse_openmetrics(text) == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestParseErrors:
    def test_garbage_line_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_openmetrics("# TYPE x counter\nnot a metric line at all !\n")

    def test_comments_and_blanks_ignored(self):
        parsed = parse_openmetrics("\n# a comment\n# EOF\n")
        assert parsed["counters"] == {}
