import pytest

from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.reldb import Attribute, ForeignKey, RelationSchema, Schema


def make_schema() -> Schema:
    schema = Schema()
    schema.add_relation(
        RelationSchema(
            "Authors",
            [Attribute("author_key", kind="key"), Attribute("name", kind="value")],
        )
    )
    schema.add_relation(
        RelationSchema(
            "Publish",
            [Attribute("paper_key", kind="fk"), Attribute("author_key", kind="fk")],
        )
    )
    schema.add_relation(
        RelationSchema(
            "Publications",
            [
                Attribute("paper_key", kind="key"),
                Attribute("title", kind="text"),
            ],
        )
    )
    schema.add_foreign_key(ForeignKey("Publish", "author_key", "Authors", "author_key"))
    schema.add_foreign_key(ForeignKey("Publish", "paper_key", "Publications", "paper_key"))
    return schema


class TestAttribute:
    def test_default_kind_is_value(self):
        assert Attribute("year").kind == "value"

    def test_invalid_kind_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("year", kind="numeric")


class TestRelationSchema:
    def test_positions_follow_declaration_order(self):
        rel = RelationSchema("R", [Attribute("a"), Attribute("b"), Attribute("c")])
        assert [rel.position(n) for n in "abc"] == [0, 1, 2]

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Attribute("a"), Attribute("a")])

    def test_two_primary_keys_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Attribute("a", kind="key"), Attribute("b", kind="key")])

    def test_key_is_none_without_key_attribute(self):
        rel = RelationSchema("R", [Attribute("a"), Attribute("b")])
        assert rel.key is None

    def test_unknown_attribute_raises(self):
        rel = RelationSchema("R", [Attribute("a")])
        with pytest.raises(UnknownAttributeError):
            rel.position("missing")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", [Attribute("a")])


class TestSchema:
    def test_validate_accepts_consistent_schema(self):
        make_schema().validate()

    def test_duplicate_relation_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.add_relation(RelationSchema("Authors", [Attribute("x")]))

    def test_unknown_relation_raises(self):
        with pytest.raises(UnknownRelationError):
            make_schema().relation("Nope")

    def test_fk_must_reference_primary_key(self):
        schema = make_schema()
        schema.add_foreign_key(ForeignKey("Publish", "author_key", "Authors", "name"))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_fk_source_must_be_fk_kind(self):
        schema = make_schema()
        schema.add_relation(
            RelationSchema("Bad", [Attribute("k", kind="key"), Attribute("v")])
        )
        schema.add_foreign_key(ForeignKey("Bad", "v", "Authors", "author_key"))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_fk_with_missing_attribute_rejected(self):
        schema = make_schema()
        schema.add_foreign_key(ForeignKey("Publish", "nope", "Authors", "author_key"))
        with pytest.raises(UnknownAttributeError):
            schema.validate()

    def test_foreign_keys_from_and_to(self):
        schema = make_schema()
        assert len(schema.foreign_keys_from("Publish")) == 2
        assert len(schema.foreign_keys_to("Authors")) == 1
        assert schema.foreign_keys_from("Authors") == []

    def test_contains(self):
        schema = make_schema()
        assert "Authors" in schema
        assert "Nope" not in schema
