"""Unit tests for :mod:`repro.reldb.delta` (apply a batch to a live DB)."""

from __future__ import annotations

import json

import pytest

from repro.errors import IntegrityError, PersistenceError, SchemaError
from repro.reldb.delta import AppliedDelta, Delta, apply_delta, load_delta, save_delta

from tests.minidb import build_minidb


class TestDeltaContainer:
    def test_add_and_accounting(self):
        delta = Delta()
        assert delta.is_empty() and delta.n_rows() == 0 and delta.relations == []
        delta.add("Publications", (9, "A Study", 0))
        delta.add("Publish", (9, 1))
        delta.add("Publish", (9, 2))
        assert not delta.is_empty()
        assert delta.n_rows() == 3
        assert delta.relations == ["Publications", "Publish"]
        assert delta.rows["Publish"] == [(9, 1), (9, 2)]

    def test_add_normalizes_to_tuples(self):
        delta = Delta()
        delta.add("Publish", [9, 1])  # lists coerce so rows stay hashable
        assert delta.rows["Publish"] == [(9, 1)]


class TestApplyDelta:
    def test_appends_rows_with_stable_ids_and_bumps_epoch(self):
        db = build_minidb()
        n_pubs = len(db.table("Publications").rows)
        n_publish = len(db.table("Publish").rows)
        epoch0 = db.epoch

        delta = Delta()
        delta.add("Publications", (4, "Delta Study", 1))
        delta.add("Publish", (4, 0))
        delta.add("Publish", (4, 3))
        applied = apply_delta(db, delta)

        assert db.epoch == epoch0 + 1 == applied.epoch
        assert applied.new_rows("Publications") == [n_pubs]
        assert applied.new_rows("Publish") == [n_publish, n_publish + 1]
        assert applied.n_rows() == 3
        assert db.table("Publications").rows[n_pubs] == (4, "Delta Study", 1)
        assert db.table("Publish").rows[n_publish:] == [(4, 0), (4, 3)]

    def test_empty_delta_still_bumps_epoch(self):
        # Epochs number applied batches, not rows: caches pinned at the
        # old epoch must still refuse reads until advanced.
        db = build_minidb()
        applied = apply_delta(db, Delta())
        assert applied.n_rows() == 0
        assert db.epoch == applied.epoch == 1

    def test_extends_virtual_relations_first_seen_only(self):
        db = build_minidb()  # years seen: 1997, 2002
        vyear = db.table("_v_Proceedings_year")
        n_years = len(vyear.rows)

        delta = Delta()
        # 2002 already exists (reused); 2005 is new (appended once).
        delta.add("Proceedings", (3, 1, 2005, "Tokyo"))
        delta.add("Proceedings", (4, 0, 2002, "Paris"))
        applied = apply_delta(db, delta)

        assert vyear.rows[n_years:] == [(2005,)]
        assert applied.new_rows("_v_Proceedings_year") == [n_years]
        assert (2002,) in vyear.rows[:n_years]

    def test_base_then_delta_matches_cold_virtual_order(self):
        # The byte-identity substrate: applying the suffix as a delta
        # yields the same virtual rows, in the same order, as inserting
        # everything before virtualization.
        cold = build_minidb(prepared=False)
        cold.insert_many(
            "Proceedings", [(3, 1, 2005, "Tokyo"), (4, 0, 1997, "Paris")]
        )
        from repro.data.dblp_schema import prepare_dblp_database

        prepare_dblp_database(cold)

        warm = build_minidb()
        delta = Delta()
        delta.add("Proceedings", (3, 1, 2005, "Tokyo"))
        delta.add("Proceedings", (4, 0, 1997, "Paris"))
        apply_delta(warm, delta)

        for rel in ("_v_Proceedings_year", "_v_Proceedings_location"):
            assert warm.table(rel).rows == cold.table(rel).rows

    def test_unknown_relation_is_a_schema_error(self):
        db = build_minidb()
        delta = Delta()
        delta.add("Nope", (1,))
        with pytest.raises(SchemaError, match="unknown relation"):
            apply_delta(db, delta)
        assert db.epoch == 0  # rejected before any mutation

    def test_virtual_relation_insert_is_a_schema_error(self):
        db = build_minidb()
        delta = Delta()
        delta.add("_v_Proceedings_year", (2030,))
        with pytest.raises(SchemaError, match="virtual relation"):
            apply_delta(db, delta)

    def test_wrong_arity_is_an_integrity_error(self):
        db = build_minidb()
        delta = Delta()
        delta.add("Publish", (4, 0, 99))
        with pytest.raises(IntegrityError):
            apply_delta(db, delta)

    def test_duplicate_primary_key_is_an_integrity_error(self):
        db = build_minidb()
        delta = Delta()
        delta.add("Publications", (0, "Clone of STING", 0))
        with pytest.raises(IntegrityError):
            apply_delta(db, delta)

    def test_dangling_foreign_key_is_an_integrity_error(self):
        db = build_minidb()
        delta = Delta()
        delta.add("Publish", (999, 0))  # no Publications row 999
        with pytest.raises(IntegrityError, match="dangles"):
            apply_delta(db, delta)

    def test_delta_rows_may_reference_each_other(self):
        # Integrity is checked after all rows land, so a batch can carry
        # a new paper together with its publish rows.
        db = build_minidb()
        delta = Delta()
        delta.add("Publications", (4, "Delta Study", 1))
        delta.add("Publish", (4, 2))
        applied = apply_delta(db, delta)
        assert applied.n_rows() == 2


class TestDeltaPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        delta = Delta()
        delta.add("Publications", (4, "Delta Study", 1))
        delta.add("Publish", (4, 0))
        path = tmp_path / "delta.json"
        save_delta(delta, path)
        assert load_delta(path).rows == delta.rows

    def test_load_rejects_non_delta_payload(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"hello": 1}), encoding="utf-8")
        with pytest.raises(PersistenceError, match="not a delta file"):
            load_delta(path)

    def test_load_rejects_unknown_format_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"format_version": 99, "relations": {}}), encoding="utf-8"
        )
        with pytest.raises(PersistenceError, match="format_version"):
            load_delta(path)


class TestAppliedDelta:
    def test_new_rows_defaults_to_empty(self):
        applied = AppliedDelta(epoch=1, row_ids={"Publish": [3, 4]})
        assert applied.new_rows("Publish") == [3, 4]
        assert applied.new_rows("Authors") == []
        assert applied.n_rows() == 2
