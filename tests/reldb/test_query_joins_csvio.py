import pytest

from repro.reldb import Attribute, Database, ForeignKey, JoinStep, RelationSchema, Schema
from repro.reldb.csvio import load_database, save_database
from repro.reldb.joins import schema_join_steps, steps_for_foreign_key, steps_from
from repro.reldb.query import count_rows, follow, project, select


def make_db() -> Database:
    schema = Schema()
    schema.add_relation(
        RelationSchema(
            "Authors",
            [Attribute("author_key", kind="key"), Attribute("name", kind="value")],
        )
    )
    schema.add_relation(
        RelationSchema(
            "Publish",
            [Attribute("paper_key", kind="fk"), Attribute("author_key", kind="fk")],
        )
    )
    schema.add_relation(
        RelationSchema(
            "Publications",
            [Attribute("paper_key", kind="key"), Attribute("title", kind="text")],
        )
    )
    schema.add_foreign_key(ForeignKey("Publish", "author_key", "Authors", "author_key"))
    schema.add_foreign_key(
        ForeignKey("Publish", "paper_key", "Publications", "paper_key")
    )
    db = Database(schema)
    db.insert_many("Authors", [(1, "Wei Wang"), (2, "Jiawei Han"), (3, "Jian Pei")])
    db.insert_many("Publications", [(10, "Paper A"), (11, "Paper B")])
    db.insert_many("Publish", [(10, 1), (10, 2), (11, 1), (11, 3)])
    return db


class TestJoinSteps:
    def test_fk_yields_forward_and_reverse_steps(self):
        db = make_db()
        fk = db.schema.foreign_keys[0]
        forward, reverse = steps_for_foreign_key(fk)
        assert forward.cardinality == "n1"
        assert reverse.cardinality == "1n"
        assert reverse.is_reverse_of(forward)
        assert forward.is_reverse_of(reverse)

    def test_reverse_is_involution(self):
        step = JoinStep("A", "x", "B", "y", "n1")
        assert step.reverse().reverse() == step

    def test_schema_join_steps_count(self):
        db = make_db()
        assert len(schema_join_steps(db.schema)) == 4

    def test_steps_from_relation(self):
        db = make_db()
        from_publish = steps_from(db.schema, "Publish")
        assert {s.dst_relation for s in from_publish} == {"Authors", "Publications"}
        from_authors = steps_from(db.schema, "Authors")
        assert [s.dst_relation for s in from_authors] == ["Publish"]

    def test_str_rendering(self):
        step = JoinStep("Publish", "author_key", "Authors", "author_key", "n1")
        assert "Publish.author_key -> Authors.author_key" == str(step)


class TestQuery:
    def test_select_with_index(self):
        db = make_db()
        rows = list(select(db, "Publish", {"author_key": 1}))
        assert rows == [0, 2]

    def test_select_multiple_conditions(self):
        db = make_db()
        rows = list(select(db, "Publish", {"author_key": 1, "paper_key": 11}))
        assert rows == [2]

    def test_select_no_conditions_scans_all(self):
        db = make_db()
        assert list(select(db, "Authors")) == [0, 1, 2]

    def test_select_with_predicate(self):
        db = make_db()
        rows = list(
            select(db, "Authors", predicate=lambda r: r["name"].startswith("Ji"))
        )
        assert rows == [1, 2]

    def test_project(self):
        db = make_db()
        assert project(db, "Authors", [0, 2], "name") == ["Wei Wang", "Jian Pei"]

    def test_follow_forward_and_reverse(self):
        db = make_db()
        fk = db.schema.foreign_keys[1]  # Publish.paper_key -> Publications
        forward, reverse = steps_for_foreign_key(fk)
        assert follow(db, forward, 0) == [0]  # authorship row 0 -> paper 10
        assert follow(db, reverse, 0) == [0, 1]  # paper 10 -> two authorships

    def test_follow_null_fk_returns_empty(self):
        db = make_db()
        db.insert("Publish", (None, 1))
        fk = db.schema.foreign_keys[1]
        forward, _ = steps_for_foreign_key(fk)
        assert follow(db, forward, 4) == []

    def test_count_rows(self):
        db = make_db()
        assert count_rows(db, "Publish", {"paper_key": 10}) == 2


class TestCsvIO:
    def test_round_trip_preserves_rows_and_schema(self, tmp_path):
        db = make_db()
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        assert loaded.relation_sizes() == db.relation_sizes()
        assert loaded.table("Authors").rows == db.table("Authors").rows
        loaded.check_integrity()

    def test_round_trip_preserves_none(self, tmp_path):
        db = make_db()
        db.insert("Publish", (None, 1))
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        assert loaded.table("Publish").rows[-1] == (None, 1)

    def test_virtual_relations_not_persisted(self, tmp_path):
        from repro.reldb.virtual import virtualize_attribute

        db = make_db()
        virtualize_attribute(db, "Authors", "name")
        save_database(db, tmp_path)
        loaded = load_database(tmp_path)
        assert all(not name.startswith("_v_") for name in loaded.schema.relations)
