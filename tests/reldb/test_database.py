import pytest

from repro.errors import IntegrityError, SchemaError, UnknownRelationError
from repro.reldb import (
    Attribute,
    Database,
    ForeignKey,
    RelationSchema,
    Schema,
)
from repro.reldb.virtual import (
    is_virtual_relation,
    virtual_relation_name,
    virtualize_all,
    virtualize_attribute,
)


def make_db() -> Database:
    schema = Schema()
    schema.add_relation(
        RelationSchema(
            "Conferences",
            [
                Attribute("conf_key", kind="key"),
                Attribute("name", kind="value"),
                Attribute("publisher", kind="value"),
            ],
        )
    )
    schema.add_relation(
        RelationSchema(
            "Proceedings",
            [
                Attribute("proc_key", kind="key"),
                Attribute("conf_key", kind="fk"),
                Attribute("year", kind="value"),
            ],
        )
    )
    schema.add_foreign_key(
        ForeignKey("Proceedings", "conf_key", "Conferences", "conf_key")
    )
    db = Database(schema)
    db.insert_many(
        "Conferences",
        [(1, "VLDB", "VLDB Endowment"), (2, "SIGMOD", "ACM"), (3, "KDD", "ACM")],
    )
    db.insert_many(
        "Proceedings",
        [(10, 1, 2002), (11, 1, 2003), (12, 2, 2002), (13, 3, 2003)],
    )
    return db


class TestDatabase:
    def test_construction_validates_schema(self):
        schema = Schema()
        schema.add_relation(RelationSchema("A", [Attribute("k", kind="key")]))
        schema.add_foreign_key(ForeignKey("A", "k", "Missing", "k"))
        with pytest.raises(UnknownRelationError):
            Database(schema)

    def test_index_is_cached_and_refreshed(self):
        db = make_db()
        idx1 = db.index("Proceedings", "conf_key")
        assert idx1.lookup(1) == [0, 1]
        db.insert("Proceedings", (14, 1, 2004))
        idx2 = db.index("Proceedings", "conf_key")
        assert idx2 is idx1
        assert idx2.lookup(1) == [0, 1, 4]

    def test_check_integrity_passes_on_consistent_data(self):
        make_db().check_integrity()

    def test_check_integrity_detects_dangling_fk(self):
        db = make_db()
        db.insert("Proceedings", (15, 99, 2004))
        with pytest.raises(IntegrityError):
            db.check_integrity()

    def test_check_integrity_allows_null_fk(self):
        db = make_db()
        db.insert("Proceedings", (15, None, 2004))
        db.check_integrity()

    def test_relation_sizes_and_summary(self):
        db = make_db()
        sizes = db.relation_sizes()
        assert sizes == {"Conferences": 3, "Proceedings": 4}
        assert "Proceedings: 4 rows" in db.summary()


class TestVirtualization:
    def test_virtualize_creates_distinct_value_rows(self):
        db = make_db()
        vname = virtualize_attribute(db, "Conferences", "publisher")
        assert vname == virtual_relation_name("Conferences", "publisher")
        assert is_virtual_relation(vname)
        values = sorted(db.table(vname).column("value"))
        assert values == ["ACM", "VLDB Endowment"]

    def test_virtualize_adds_foreign_key(self):
        db = make_db()
        vname = virtualize_attribute(db, "Conferences", "publisher")
        fks = [fk for fk in db.schema.foreign_keys if fk.dst_relation == vname]
        assert len(fks) == 1
        db.check_integrity()

    def test_virtualize_is_idempotent(self):
        db = make_db()
        first = virtualize_attribute(db, "Conferences", "publisher")
        second = virtualize_attribute(db, "Conferences", "publisher")
        assert first == second
        assert len(db.table(first)) == 2

    def test_virtualize_rejects_keys_and_fks(self):
        db = make_db()
        with pytest.raises(SchemaError):
            virtualize_attribute(db, "Conferences", "conf_key")
        with pytest.raises(SchemaError):
            virtualize_attribute(db, "Proceedings", "conf_key")

    def test_virtualize_skips_none_values(self):
        db = make_db()
        db.insert("Conferences", (4, "ICDE", None))
        vname = virtualize_attribute(db, "Conferences", "publisher")
        assert None not in db.table(vname).column("value")
        db.check_integrity()  # None FK values are nullable

    def test_virtualize_all_respects_skip(self):
        db = make_db()
        created = virtualize_all(db, skip={("Conferences", "name")})
        names = set(created)
        assert virtual_relation_name("Conferences", "publisher") in names
        assert virtual_relation_name("Proceedings", "year") in names
        assert virtual_relation_name("Conferences", "name") not in names

    def test_virtualize_all_ignores_virtual_relations(self):
        db = make_db()
        first = virtualize_all(db)
        second = virtualize_all(db)
        assert set(first) == set(second)
