import pytest

from repro.reldb.stats import (
    column_stats,
    database_stats,
    fanout_stats,
    format_stats,
)

from tests.minidb import build_minidb


@pytest.fixture(scope="module")
def db():
    return build_minidb()


class TestColumnStats:
    def test_key_column_is_unique(self, db):
        stats = column_stats(db, "Authors", "author_key")
        assert stats.n_rows == 5
        assert stats.n_distinct == 5
        assert stats.n_null == 0
        assert stats.density == 1.0

    def test_fk_column_density(self, db):
        stats = column_stats(db, "Publish", "author_key")
        assert stats.n_rows == 10
        assert stats.n_distinct == 5
        assert stats.density == 2.0

    def test_null_counting(self):
        db = build_minidb(prepared=False)
        db.insert("Publish", (0, None))
        stats = column_stats(db, "Publish", "author_key")
        assert stats.n_null == 1
        assert stats.n_distinct == 5

    def test_empty_table(self):
        from repro.data.dblp_schema import new_dblp_database

        db = new_dblp_database()
        stats = column_stats(db, "Authors", "name")
        assert stats.n_rows == 0
        assert stats.density == 0.0


class TestFanoutStats:
    def test_authorships_per_paper(self, db):
        fk = next(
            fk
            for fk in db.schema.foreign_keys
            if fk.src_relation == "Publish" and fk.dst_relation == "Publications"
        )
        stats = fanout_stats(db, fk)
        # Papers have 3, 3, 2, 2 authorship rows.
        assert stats.min == 2
        assert stats.max == 3
        assert stats.mean == pytest.approx(2.5)

    def test_zero_fanout_included(self, db):
        fk = next(
            fk
            for fk in db.schema.foreign_keys
            if fk.src_relation == "Publish" and fk.dst_relation == "Authors"
        )
        stats = fanout_stats(db, fk)
        assert stats.min >= 1  # every author in the mini DB has a row
        assert "Authors <- Publish.author_key" in str(stats)


class TestDatabaseStats:
    def test_report_excludes_virtual_by_default(self, db):
        report = database_stats(db)
        assert all(not name.startswith("_v_") for name in report["relations"])
        assert len(report["fanouts"]) == 4

    def test_report_can_include_virtual(self, db):
        report = database_stats(db, include_virtual=True)
        assert any(name.startswith("_v_") for name in report["relations"])

    def test_format_stats(self, db):
        text = format_stats(db)
        assert "relation sizes:" in text
        assert "join fan-outs" in text
        assert "Publish" in text
