import pytest

from repro.errors import IntegrityError
from repro.reldb import Attribute, HashIndex, RelationSchema, Table


@pytest.fixture
def authors() -> Table:
    table = Table(
        RelationSchema(
            "Authors",
            [Attribute("author_key", kind="key"), Attribute("name", kind="value")],
        )
    )
    table.insert_many([(1, "Wei Wang"), (2, "Jiawei Han"), (3, "Wei Wang II")])
    return table


class TestTable:
    def test_insert_returns_sequential_row_ids(self, authors):
        assert authors.insert((4, "Hui Fang")) == 3

    def test_wrong_arity_rejected(self, authors):
        with pytest.raises(IntegrityError):
            authors.insert((4,))

    def test_duplicate_primary_key_rejected(self, authors):
        with pytest.raises(IntegrityError):
            authors.insert((1, "Someone Else"))

    def test_value_and_row(self, authors):
        assert authors.value(0, "name") == "Wei Wang"
        assert authors.row(1) == (2, "Jiawei Han")

    def test_column(self, authors):
        assert authors.column("author_key") == [1, 2, 3]

    def test_row_by_key(self, authors):
        assert authors.row_by_key(2) == 1
        assert authors.row_by_key(99) is None

    def test_row_by_key_without_key_raises(self):
        table = Table(RelationSchema("R", [Attribute("a")]))
        with pytest.raises(IntegrityError):
            table.row_by_key(1)

    def test_as_dict(self, authors):
        assert authors.as_dict(0) == {"author_key": 1, "name": "Wei Wang"}

    def test_len_and_iter(self, authors):
        assert len(authors) == 3
        assert list(authors)[2] == (3, "Wei Wang II")


class TestHashIndex:
    def test_lookup_groups_rows_by_value(self):
        table = Table(RelationSchema("R", [Attribute("x")]))
        table.insert_many([("a",), ("b",), ("a",), ("a",)])
        index = HashIndex(table, "x")
        assert index.lookup("a") == [0, 2, 3]
        assert index.lookup("b") == [1]
        assert index.lookup("zzz") == []

    def test_count_matches_lookup_length(self):
        table = Table(RelationSchema("R", [Attribute("x")]))
        table.insert_many([(1,), (1,), (2,)])
        index = HashIndex(table, "x")
        assert index.count(1) == 2
        assert index.count(3) == 0

    def test_incremental_refresh_sees_appended_rows(self):
        table = Table(RelationSchema("R", [Attribute("x")]))
        table.insert(("a",))
        index = HashIndex(table, "x")
        table.insert(("a",))
        assert index.stale
        index.refresh()
        assert index.lookup("a") == [0, 1]
        assert not index.stale

    def test_distinct_values_and_len(self):
        table = Table(RelationSchema("R", [Attribute("x")]))
        table.insert_many([("a",), ("b",), ("a",)])
        index = HashIndex(table, "x")
        assert sorted(index.distinct_values()) == ["a", "b"]
        assert len(index) == 2
