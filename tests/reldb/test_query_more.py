"""Additional query-layer coverage against the mini DBLP database."""

import pytest

from repro.reldb.joins import JoinStep, steps_for_foreign_key
from repro.reldb.query import count_rows, follow, project, select

from tests.minidb import build_minidb


@pytest.fixture(scope="module")
def db():
    return build_minidb()


class TestSelectOnMiniDb:
    def test_select_picks_most_selective_index(self, db):
        # paper_key=0 has 3 rows, author_key=2 has 1 row: the planner should
        # produce the same answer regardless of which index prefilters.
        rows = list(select(db, "Publish", {"paper_key": 0, "author_key": 2}))
        assert rows == [2]

    def test_select_contradictory_conditions(self, db):
        assert list(select(db, "Publish", {"paper_key": 0, "author_key": 3})) == []

    def test_select_on_virtual_relation(self, db):
        rows = list(select(db, "_v_Proceedings_year", {"value": 2002}))
        assert len(rows) == 1

    def test_predicate_combined_with_index(self, db):
        rows = list(
            select(
                db,
                "Publish",
                {"author_key": 0},
                predicate=lambda r: r["paper_key"] >= 2,
            )
        )
        assert rows == [6, 8]

    def test_count_matches_select_everywhere(self, db):
        for author in range(5):
            where = {"author_key": author}
            assert count_rows(db, "Publish", where) == len(
                list(select(db, "Publish", where))
            )


class TestFollowAndProject:
    def test_follow_into_virtual_relation(self, db):
        step = JoinStep("Proceedings", "year", "_v_Proceedings_year", "value", "n1")
        targets = follow(db, step, 0)  # proceedings 0 -> year 1997
        assert len(targets) == 1
        assert db.table("_v_Proceedings_year").row(targets[0]) == (1997,)

    def test_follow_reverse_from_virtual(self, db):
        forward = JoinStep("Proceedings", "year", "_v_Proceedings_year", "value", "n1")
        year_2002_row = next(
            i
            for i, row in enumerate(db.table("_v_Proceedings_year").rows)
            if row[0] == 2002
        )
        back = follow(db, forward.reverse(), year_2002_row)
        assert len(back) == 2  # proceedings 1 and 2 are both from 2002

    def test_project_preserves_order(self, db):
        values = project(db, "Publications", [2, 0], "title")
        assert values == ["Sequential patterns", "STING"]

    def test_chained_follow_reaches_coauthors(self, db):
        fk_paper = next(
            fk for fk in db.schema.foreign_keys
            if fk.src_relation == "Publish" and fk.dst_relation == "Publications"
        )
        fk_author = next(
            fk for fk in db.schema.foreign_keys
            if fk.src_relation == "Publish" and fk.dst_relation == "Authors"
        )
        to_paper, to_authorships = steps_for_foreign_key(fk_paper)
        to_author, _ = steps_for_foreign_key(fk_author)

        paper = follow(db, to_paper, 0)[0]
        authorships = follow(db, to_authorships, paper)
        authors = sorted(
            follow(db, to_author, a)[0] for a in authorships
        )
        assert authors == [0, 1, 2]  # WW, Jiong Yang, Jiawei Han
