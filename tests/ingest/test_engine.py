"""Unit tests for :class:`repro.ingest.engine.IngestEngine`.

The byte-identity of refresh output against a cold refit is property
tested in ``tests/property/test_delta_ingest_property.py``; these tests
pin the engine's *contract*: cold resolve parity, epoch sequencing
(no double apply, no refresh without apply), clean-name short-circuits,
and the report surface.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.distinct import Distinct
from repro.data.deltas import grow_world, split_world
from repro.errors import ReproError
from repro.ingest import IngestEngine
from repro.reldb.delta import Delta

NAMES = ["Wei Wang", "Rakesh Kumar", "Jim Smith"]
MIN_SIM = 0.4


@pytest.fixture()
def warm(fitted, small_world):
    """The fitted models bound to a fresh pre-delta base, plus its split."""
    # New papers authored by the "Jim Smith" entities, so the delta is
    # guaranteed to add references of a tracked name (refs_new > 0).
    pool = [e.entity_id for e in small_world.entities if e.name == "Jim Smith"]
    grown = grow_world(small_world, 6, seed=13, author_pool=pool)
    split = split_world(grown, 6)
    config = replace(
        fitted.config,
        similarity_backend="vectorized",
        propagation_backend="batched",
    )
    distinct = Distinct.from_models(
        split.base, fitted.resem_model_, fitted.walk_model_, config
    )
    return distinct, split


class TestColdResolve:
    def test_resolve_matches_cold_prepare(self, warm):
        distinct, _ = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        got = engine.resolve("Jim Smith")
        want = distinct.cluster_prepared(
            distinct.prepare("Jim Smith"), min_sim=MIN_SIM
        )
        assert got.rows == want.rows
        assert sorted(sorted(c) for c in got.clusters) == sorted(
            sorted(c) for c in want.clusters
        )
        assert got.resem_matrix.tobytes() == want.resem_matrix.tobytes()
        assert got.walk_matrix.tobytes() == want.walk_matrix.tobytes()

    def test_untracked_name_rejected(self, warm):
        distinct, _ = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        with pytest.raises(ReproError, match="not tracked"):
            engine.resolution("Jim Smith")


class TestEpochSequencing:
    def test_refresh_without_apply_rejected(self, warm):
        distinct, _ = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        engine.resolve("Jim Smith")
        with pytest.raises(ReproError, match="apply"):
            engine.refresh("Jim Smith")

    def test_second_apply_with_pending_refreshes_rejected(self, warm):
        distinct, split = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        for name in NAMES:
            engine.resolve(name)
        engine.apply(split.delta)
        with pytest.raises(ReproError, match="pending"):
            engine.apply(Delta())

    def test_refresh_drains_pending(self, warm):
        distinct, split = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        for name in NAMES:
            engine.resolve(name)
        engine.apply(split.delta)
        for name in NAMES:
            engine.refresh(name)
        assert engine.pending() == []
        # Once drained, the next delta is accepted again.
        engine.apply(Delta())

    def test_empty_delta_leaves_every_name_clean(self, warm):
        distinct, _ = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        before = {name: engine.resolve(name) for name in NAMES}
        report = engine.ingest(Delta())
        assert report.n_rows_added == 0
        assert sorted(report.names_clean) == sorted(NAMES)
        assert report.names_refreshed == []
        totals = report.totals()
        assert totals["pairs_recomputed"] == 0 and totals["refs_dirty"] == 0
        for name in NAMES:
            got = report.resolution(name)
            assert got.rows == before[name].rows
            assert got.resem_matrix.tobytes() == before[name].resem_matrix.tobytes()


class TestReportSurface:
    def test_resolution_unknown_name_raises(self, warm):
        distinct, _ = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        engine.resolve("Jim Smith")
        report = engine.ingest(Delta())
        with pytest.raises(KeyError):
            report.resolution("Nobody")

    def test_totals_account_every_refresh(self, warm):
        distinct, split = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        for name in NAMES:
            engine.resolve(name)
        report = engine.ingest(split.delta)
        totals = report.totals()
        assert totals["names_refreshed"] + totals["names_clean"] == len(NAMES)
        assert totals["refs_new"] > 0  # the delta added references
        assert totals["pairs_recomputed"] > 0

    def test_adopt_of_untracked_name_is_a_noop(self, warm):
        distinct, split = warm
        engine = IngestEngine(distinct, min_sim=MIN_SIM)
        engine.resolve("Jim Smith")
        report = engine.ingest(split.delta)
        stray = replace(report.refreshes[0], name="Nobody")
        engine.adopt(stray)  # must not raise, must not add state
        assert engine.names == ["Jim Smith"]
