"""Unit tests for the greedy assigner and its ``repro.core.incremental`` shim."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.distinct import Distinct
from repro.data.deltas import grow_world, split_world
from repro.ingest import Assignment, extend_resolution

MIN_SIM = 0.4


def warm_resolution(fitted, small_world, name, n_delta=4, seed=19):
    pool = [e.entity_id for e in small_world.entities if e.name == name]
    grown = grow_world(small_world, n_delta, seed=seed, author_pool=pool)
    split = split_world(grown, n_delta)
    config = replace(
        fitted.config,
        similarity_backend="vectorized",
        propagation_backend="batched",
    )
    warm = Distinct.from_models(
        split.base, fitted.resem_model_, fitted.walk_model_, config
    )
    resolution = warm.cluster_prepared(warm.prepare(name), min_sim=MIN_SIM)
    from repro.reldb.delta import apply_delta
    from repro.core.references import extract_references

    apply_delta(warm.db, split.delta)
    refs = extract_references(warm.db, name, warm.config)
    new_rows = [r for r in refs.rows if r not in set(resolution.rows)]
    return warm, resolution, new_rows


class TestExtendResolution:
    def test_new_rows_join_without_mutating_the_input(self, fitted, small_world):
        warm, resolution, new_rows = warm_resolution(
            fitted, small_world, "Jim Smith"
        )
        assert new_rows  # the author pool guarantees fresh references
        n_before = len(resolution.rows)
        extended, assignments = extend_resolution(
            warm, resolution, new_rows, min_sim=MIN_SIM
        )
        assert len(resolution.rows) == n_before  # input untouched
        assert extended.rows == resolution.rows + new_rows
        assert [a.row for a in assignments] == new_rows
        assert extended.resem_matrix.shape == (len(extended.rows),) * 2
        for a in assignments:
            assert isinstance(a, Assignment)
            assert a.row in extended.clusters[a.cluster_index]

    def test_impossible_threshold_creates_singletons(self, fitted, small_world):
        warm, resolution, new_rows = warm_resolution(
            fitted, small_world, "Jim Smith"
        )
        extended, assignments = extend_resolution(
            warm, resolution, new_rows, min_sim=1.1
        )
        assert all(a.created_new_cluster for a in assignments)
        assert len(extended.clusters) == len(resolution.clusters) + len(new_rows)

    def test_already_resolved_row_rejected(self, fitted, small_world):
        warm, resolution, _ = warm_resolution(fitted, small_world, "Jim Smith")
        with pytest.raises(ValueError, match="already resolved"):
            extend_resolution(warm, resolution, [resolution.rows[0]])


class TestCompatShim:
    def test_core_incremental_reexports_the_ingest_objects(self):
        import repro.core.incremental as shim
        import repro.ingest.greedy as greedy

        assert shim.Assignment is greedy.Assignment
        assert shim.extend_resolution is greedy.extend_resolution

    def test_shim_all_is_the_public_surface(self):
        import repro.core.incremental as shim

        assert sorted(shim.__all__) == ["Assignment", "extend_resolution"]
