"""Unit tests for :mod:`repro.ingest.runner` (the ``repro ingest`` engine).

Crash/resume byte-identity lives in the property suite; these tests pin
the parameter validation, the delta fingerprint, and the checkpoint
signature (resuming against a different delta must refuse, not mix
epochs).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.distinct import Distinct
from repro.data.deltas import grow_world, split_world
from repro.errors import CheckpointError
from repro.ingest import ingest_checkpoint, ingest_resilient
from repro.ingest.runner import INGEST_MODES, delta_fingerprint
from repro.reldb.delta import Delta

NAMES = ["Wei Wang", "Rakesh Kumar", "Jim Smith"]
MIN_SIM = 0.4


def sample_delta() -> Delta:
    delta = Delta()
    delta.add("Publications", (9, "A Study", 0))
    delta.add("Publish", (9, 1))
    return delta


class TestDeltaFingerprint:
    def test_stable_and_prefixed(self):
        a, b = sample_delta(), sample_delta()
        assert delta_fingerprint(a) == delta_fingerprint(b)
        assert delta_fingerprint(a).startswith("sha256:")

    def test_row_content_changes_the_hash(self):
        other = sample_delta()
        other.add("Publish", (9, 2))
        assert delta_fingerprint(other) != delta_fingerprint(sample_delta())

    def test_row_order_changes_the_hash(self):
        # Row order within a relation fixes row ids: part of the identity.
        base, flipped = Delta(), Delta()
        base.add("Publish", (9, 1))
        base.add("Publish", (9, 2))
        flipped.add("Publish", (9, 2))
        flipped.add("Publish", (9, 1))
        assert delta_fingerprint(flipped) != delta_fingerprint(base)

    def test_relation_order_is_canonicalized(self):
        # Relation insertion order cannot change what apply_delta builds
        # (virtual tables are per relation-attribute), so it is not part
        # of the fingerprint.
        flipped = Delta()
        flipped.add("Publish", (9, 1))
        flipped.add("Publications", (9, "A Study", 0))
        assert delta_fingerprint(flipped) == delta_fingerprint(sample_delta())


class TestCheckpointSignature:
    def test_resume_with_a_different_delta_refuses(self, tmp_path):
        path = tmp_path / "ingest.ckpt.json"
        store = ingest_checkpoint(path, NAMES, sample_delta(), MIN_SIM, "exact")
        store.save([], errors=[])

        other = sample_delta()
        other.add("Publish", (9, 2))
        mismatched = ingest_checkpoint(path, NAMES, other, MIN_SIM, "exact")
        with pytest.raises(CheckpointError):
            mismatched.load()

    def test_resume_with_the_same_parameters_loads(self, tmp_path):
        path = tmp_path / "ingest.ckpt.json"
        ingest_checkpoint(path, NAMES, sample_delta(), MIN_SIM, "exact").save(
            [], errors=[]
        )
        payload = ingest_checkpoint(
            path, NAMES, sample_delta(), MIN_SIM, "exact"
        ).load()
        assert payload is not None and payload["completed"] == []

    @pytest.mark.parametrize(
        "names,min_sim,mode",
        [(NAMES[:2], MIN_SIM, "exact"), (NAMES, 0.5, "exact"), (NAMES, MIN_SIM, "greedy")],
    )
    def test_any_other_parameter_change_refuses(self, tmp_path, names, min_sim, mode):
        path = tmp_path / "ingest.ckpt.json"
        ingest_checkpoint(path, NAMES, sample_delta(), MIN_SIM, "exact").save(
            [], errors=[]
        )
        with pytest.raises(CheckpointError):
            ingest_checkpoint(path, names, sample_delta(), min_sim, mode).load()


class TestParameterValidation:
    def test_unknown_mode_rejected(self, fitted, small_world):
        split = split_world(grow_world(small_world, 2, seed=0), 2)
        with pytest.raises(ValueError, match="mode"):
            ingest_resilient(
                fitted, split.truth, NAMES, split.delta, MIN_SIM, mode="fast"
            )
        assert INGEST_MODES == ("exact", "greedy")

    def test_nonpositive_workers_rejected(self, fitted, small_world):
        split = split_world(grow_world(small_world, 2, seed=0), 2)
        with pytest.raises(ValueError, match="workers"):
            ingest_resilient(
                fitted, split.truth, NAMES, split.delta, MIN_SIM, workers=0
            )


class TestGreedyMode:
    def test_greedy_run_scores_every_name(self, fitted, small_world):
        grown = grow_world(small_world, 5, seed=17)
        split = split_world(grown, 5)
        config = replace(
            fitted.config,
            similarity_backend="vectorized",
            propagation_backend="batched",
        )
        warm = Distinct.from_models(
            split.base, fitted.resem_model_, fitted.walk_model_, config
        )
        outcome = ingest_resilient(
            warm, split.truth, NAMES, split.delta, MIN_SIM, mode="greedy"
        )
        assert outcome.complete and not outcome.errors
        assert [r.name for r in outcome.result.names] == NAMES
        assert outcome.result.variant_key == "ingest:greedy"
        assert outcome.stats["names_refreshed"] == len(NAMES)
