"""Unit tests for the delta-ingest package (engine, runner, greedy)."""
