"""Affiliation labels: generator -> ground truth -> Fig-5 rendering."""

from repro.data.world import load_ground_truth, save_ground_truth


class TestInstitutions:
    def test_every_entity_has_one_institution_per_era(self, small_world):
        for entity in small_world.entities:
            assert len(entity.institutions) == len(entity.communities)
            assert all(isinstance(i, str) and i for i in entity.institutions)

    def test_same_community_entities_share_institution_pool(self, small_world):
        by_community: dict[int, set[str]] = {}
        for entity in small_world.entities:
            if len(entity.communities) == 1:
                by_community.setdefault(entity.communities[0], set()).add(
                    entity.institutions[0]
                )
        # Institutions concentrate: each community uses at most 2 places.
        assert all(len(insts) <= 2 for insts in by_community.values())

    def test_ground_truth_carries_labels(self, small_db):
        _, truth = small_db
        assert truth.entity_labels
        some_entity = next(iter(truth.entity_of_row.values()))
        assert isinstance(truth.entity_labels[some_entity], str)

    def test_labels_survive_serialization(self, small_db, tmp_path):
        _, truth = small_db
        path = tmp_path / "truth.json"
        save_ground_truth(truth, path)
        loaded = load_ground_truth(path)
        assert loaded.entity_labels == truth.entity_labels

    def test_multi_era_entity_label_joins_eras(self, small_world, small_db):
        _, truth = small_db
        multi = next(
            e for e in small_world.entities if len(e.communities) == 2
        )
        label = truth.entity_labels[multi.entity_id]
        assert " / " in label

    def test_fig5_rendering_shows_affiliations(self, fitted, small_db):
        from repro.eval.visualize import render_clusters_text

        _, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        text = render_clusters_text(resolution, truth)
        assert " @ " in text
