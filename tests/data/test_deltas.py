"""Unit tests for :mod:`repro.data.deltas` (grow_world / split_world)."""

from __future__ import annotations

import pytest

from repro.data.deltas import grow_world, split_world
from repro.data.world import world_to_database
from repro.reldb.delta import apply_delta


def all_rows(db):
    return {rel: list(db.table(rel).rows) for rel in db.schema.relations}


class TestGrowWorld:
    def test_appends_exactly_n_papers_with_fresh_ids(self, small_world):
        grown = grow_world(small_world, 7, seed=3)
        assert len(grown.papers) == len(small_world.papers) + 7
        assert grown.papers[: len(small_world.papers)] == small_world.papers
        old_max = max(p.paper_id for p in small_world.papers)
        new_ids = [p.paper_id for p in grown.papers[len(small_world.papers):]]
        assert new_ids == list(range(old_max + 1, old_max + 8))

    def test_deterministic_in_seed(self, small_world):
        assert grow_world(small_world, 5, seed=9).papers == grow_world(
            small_world, 5, seed=9
        ).papers
        assert grow_world(small_world, 5, seed=9).papers != grow_world(
            small_world, 5, seed=10
        ).papers

    def test_new_papers_reuse_existing_proceedings(self, small_world):
        # The headline guarantee: every new (conference, year) pair already
        # exists, so the split delta carries no Proceedings rows.
        grown = grow_world(small_world, 10, seed=1)
        split = split_world(grown, 10)
        assert "Proceedings" not in split.delta.rows
        seen = {(p.conf_id, p.year) for p in small_world.papers}
        for paper in grown.papers[len(small_world.papers):]:
            assert (paper.conf_id, paper.year) in seen

    def test_zero_papers_is_identity(self, small_world):
        assert grow_world(small_world, 0).papers == small_world.papers

    def test_negative_papers_rejected(self, small_world):
        with pytest.raises(ValueError, match=">= 0"):
            grow_world(small_world, -1)

    def test_pool_without_published_entity_rejected(self, small_world):
        unpublished = max(e.entity_id for e in small_world.entities) + 100
        with pytest.raises(ValueError, match="author_pool"):
            grow_world(small_world, 3, author_pool=[unpublished])

    def test_author_pool_restricts_authorship(self, small_world):
        published = {
            e for p in small_world.papers for e in p.author_entity_ids
        }
        pool = sorted(published)[:2]
        grown = grow_world(small_world, 6, seed=4, author_pool=pool)
        for paper in grown.papers[len(small_world.papers):]:
            assert set(paper.author_entity_ids) <= set(pool)


class TestSplitWorld:
    def test_base_plus_delta_equals_cold_build(self, small_world):
        grown = grow_world(small_world, 9, seed=2)
        split = split_world(grown, 9)
        apply_delta(split.base, split.delta)
        cold, _ = world_to_database(grown)
        assert all_rows(split.base) == all_rows(cold)

    def test_split_accounting(self, small_world):
        grown = grow_world(small_world, 4, seed=0)
        split = split_world(grown, 4)
        assert split.n_base_papers == len(small_world.papers)
        assert split.n_delta_papers == 4
        n_refs = sum(len(p.author_entity_ids) for p in grown.papers[-4:])
        assert len(split.delta.rows["Publish"]) == n_refs
        assert len(split.delta.rows["Publications"]) == 4

    def test_truth_uses_combined_row_numbering(self, small_world):
        grown = grow_world(small_world, 6, seed=8)
        split = split_world(grown, 6)
        total_refs = sum(len(p.author_entity_ids) for p in grown.papers)
        assert len(split.truth.entity_of_row) == total_refs
        assert max(split.truth.entity_of_row) == total_refs - 1

    def test_out_of_range_split_rejected(self, small_world):
        with pytest.raises(ValueError, match="n_delta_papers"):
            split_world(small_world, len(small_world.papers) + 1)
        with pytest.raises(ValueError, match="n_delta_papers"):
            split_world(small_world, -1)

    def test_full_delta_split_has_empty_base_papers(self, small_world):
        split = split_world(small_world, len(small_world.papers))
        assert split.n_base_papers == 0
        assert len(split.base.table("Publish").rows) == 0

    def test_base_citing_delta_paper_rejected(self, small_world):
        from dataclasses import replace

        papers = [replace(p, citations=()) for p in small_world.papers]
        # The first (base) paper cites the last (delta) paper.
        papers[0] = replace(papers[0], citations=(papers[-1].paper_id,))
        world = replace(small_world, papers=papers)
        with pytest.raises(ValueError, match="cites delta papers"):
            split_world(world, 1, with_citations=True)
