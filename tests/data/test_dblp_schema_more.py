"""Additional schema and generator coverage."""

import pytest

from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.dblp_schema import (
    dblp_schema,
    new_dblp_database,
    prepare_dblp_database,
)
from repro.data.generator import GeneratorConfig, generate_world
from repro.data.world import world_to_database
from repro.reldb.virtual import virtual_relation_name


class TestDblpSchema:
    def test_base_schema_relations(self):
        schema = dblp_schema()
        assert set(schema.relations) == {
            "Authors", "Publish", "Publications", "Proceedings", "Conferences",
        }
        assert len(schema.foreign_keys) == 4

    def test_citation_schema_adds_cites(self):
        schema = dblp_schema(with_citations=True)
        assert "Cites" in schema
        assert len(schema.foreign_keys) == 6

    def test_author_name_is_text_kind(self):
        # Critical invariant: the name must never be virtualized, or the
        # ambiguous name itself becomes a linkage.
        schema = dblp_schema()
        assert schema.relation("Authors").attribute("name").kind == "text"

    def test_prepare_creates_expected_virtual_relations(self):
        db = new_dblp_database()
        db.insert("Conferences", (0, "VLDB", "ACM"))
        db.insert("Proceedings", (0, 0, 2001, "Rome"))
        prepare_dblp_database(db)
        for rel, attr in (
            ("Proceedings", "year"),
            ("Proceedings", "location"),
            ("Conferences", "publisher"),
        ):
            assert virtual_relation_name(rel, attr) in db.schema
        assert virtual_relation_name("Authors", "name") not in db.schema

    def test_prepare_is_idempotent(self):
        db = new_dblp_database()
        db.insert("Conferences", (0, "VLDB", "ACM"))
        prepare_dblp_database(db)
        before = set(db.schema.relations)
        prepare_dblp_database(db)
        assert set(db.schema.relations) == before


class TestGeneratorEdgeCases:
    def test_single_entity_spec(self):
        world = generate_world(
            GeneratorConfig(seed=1, n_communities=4,
                            regular_entities_per_community=10, rare_entities=10,
                            background_papers_per_community_year=2),
            [AmbiguousNameSpec("Only One", (5,))],
        )
        db, truth = world_to_database(world)
        assert len(truth.clusters_for("Only One")) == 1
        assert len(truth.rows_of_name["Only One"]) == 5

    def test_two_refs_minimum(self):
        world = generate_world(
            GeneratorConfig(seed=2, n_communities=4,
                            regular_entities_per_community=10, rare_entities=10,
                            background_papers_per_community_year=2),
            [AmbiguousNameSpec("Tiny Pair", (1, 1))],
        )
        db, truth = world_to_database(world)
        assert len(truth.rows_of_name["Tiny Pair"]) == 2
        assert len(truth.clusters_for("Tiny Pair")) == 2

    def test_empty_spec_list(self):
        world = generate_world(
            GeneratorConfig(seed=3, n_communities=4,
                            regular_entities_per_community=10, rare_entities=10,
                            background_papers_per_community_year=2),
            [],
        )
        assert world.ambiguous_names == []
        db, truth = world_to_database(world)
        db.check_integrity()

    def test_more_entities_than_communities_wraps(self):
        world = generate_world(
            GeneratorConfig(seed=4, n_communities=3,
                            regular_entities_per_community=10, rare_entities=10,
                            background_papers_per_community_year=2),
            [AmbiguousNameSpec("Crowded Name", (2,) * 7)],
        )
        entities = world.entities_named("Crowded Name")
        assert len(entities) == 7
        communities = [e.communities[0] for e in entities]
        assert len(set(communities)) == 3  # wrapped around

    def test_world_stats_consistency(self, small_world):
        stats = small_world.stats()
        assert stats["authorships"] == sum(
            len(p.author_entity_ids) for p in small_world.papers
        )
        assert stats["entities"] >= stats["distinct_names"] - 1
