import pytest

from repro.data.dblp_xml import iter_dblp_records, load_dblp_xml
from repro.data.music import (
    MusicConfig,
    generate_music_database,
    music_distinct_config,
)

SAMPLE_XML = """<dblp>
<inproceedings key="conf/vldb/WangYM97">
  <author>Wei Wang</author><author>Jiong Yang</author><author>Richard Muntz</author>
  <title>STING: A Statistical Information Grid Approach.</title>
  <booktitle>VLDB</booktitle><year>1997</year>
</inproceedings>
<inproceedings key="conf/sigmod/WangW02">
  <author>Haixun Wang</author><author>Wei Wang</author>
  <title>Clustering by pattern similarity.</title>
  <booktitle>SIGMOD</booktitle><year>2002</year>
</inproceedings>
<article key="journals/tods/X">
  <author>Someone Else</author>
  <title>A journal paper.</title>
  <journal>TODS</journal><year>2001</year>
</article>
<inproceedings key="conf/broken/1">
  <title>No authors, skipped.</title>
  <booktitle>X</booktitle><year>2000</year>
</inproceedings>
<inproceedings key="conf/broken/2">
  <author>A B</author><title>No year, skipped.</title><booktitle>X</booktitle>
</inproceedings>
</dblp>"""


class TestDblpXml:
    def test_iter_records_parses_inproceedings(self):
        records = list(iter_dblp_records(SAMPLE_XML))
        assert len(records) == 2
        assert records[0].venue == "VLDB"
        assert records[0].year == 1997
        assert records[0].authors[0] == "Wei Wang"

    def test_article_records_optional(self):
        records = list(
            iter_dblp_records(SAMPLE_XML, record_tags=("inproceedings", "article"))
        )
        assert len(records) == 3
        assert any(r.venue == "TODS" for r in records)

    def test_load_builds_consistent_database(self):
        db = load_dblp_xml(SAMPLE_XML)
        db.check_integrity()
        assert len(db.table("Publications")) == 2
        assert len(db.table("Publish")) == 5
        names = set(db.table("Authors").column("name"))
        assert "Wei Wang" in names and "Haixun Wang" in names

    def test_shared_name_shares_author_row(self):
        db = load_dblp_xml(SAMPLE_XML)
        rows = db.index("Authors", "name").lookup("Wei Wang")
        assert len(rows) == 1

    def test_min_papers_filter(self):
        db = load_dblp_xml(SAMPLE_XML, min_papers=2)
        names = set(db.table("Authors").column("name"))
        assert names == {"Wei Wang"}  # only author with 2 papers
        assert len(db.table("Publish")) == 2

    def test_proceedings_per_venue_year(self):
        db = load_dblp_xml(SAMPLE_XML)
        assert len(db.table("Proceedings")) == 2
        assert len(db.table("Conferences")) == 2

    def test_file_source(self, tmp_path):
        path = tmp_path / "dblp.xml"
        path.write_text(SAMPLE_XML)
        db = load_dblp_xml(path)
        assert len(db.table("Publications")) == 2

    def test_prepared_database_has_virtual_year(self):
        db = load_dblp_xml(SAMPLE_XML)
        assert "_v_Proceedings_year" in db.schema


class TestMusicDomain:
    @pytest.fixture(scope="class")
    def music(self):
        return generate_music_database(MusicConfig())

    def test_database_consistent(self, music):
        db, truth = music
        db.check_integrity()
        assert len(db.table("Credits")) == len(truth.entity_of_row)

    def test_ambiguous_artist_present(self, music):
        db, truth = music
        clusters = truth.clusters_for("The Forgotten")
        assert len(clusters) == 3

    def test_deterministic(self):
        a, truth_a = generate_music_database(MusicConfig())
        b, truth_b = generate_music_database(MusicConfig())
        assert a.relation_sizes() == b.relation_sizes()
        assert truth_a.rows_of_name["The Forgotten"] == truth_b.rows_of_name[
            "The Forgotten"
        ]

    def test_config_binds_to_music_schema(self):
        config = music_distinct_config()
        assert config.reference_relation == "Credits"
        assert config.object_relation == "Artists"

    def test_end_to_end_resolution(self, music):
        # The full pipeline on a non-DBLP schema: fit + resolve the shared
        # stage name; the three bands live in different scenes, so
        # resolution should be near-perfect.
        from repro import Distinct
        from repro.eval.metrics import pairwise_scores

        db, truth = music
        distinct = Distinct(music_distinct_config()).fit(db)
        resolution = distinct.resolve("The Forgotten")
        gold = list(truth.clusters_for("The Forgotten").values())
        scores = pairwise_scores(resolution.clusters, gold)
        assert scores.f1 > 0.9
