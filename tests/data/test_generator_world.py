import pytest

from repro.data.ambiguity import (
    TABLE1_EXPECTED,
    TABLE1_SPEC,
    AmbiguousNameSpec,
    spec_by_name,
)
from repro.data.generator import GeneratorConfig, generate_world
from repro.data.world import world_to_database

from tests.conftest import SMALL_CONFIG, SMALL_SPECS


class TestAmbiguousNameSpec:
    def test_totals(self):
        spec = AmbiguousNameSpec("X Y", (3, 2, 1))
        assert spec.entity_count == 3
        assert spec.total_refs == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            AmbiguousNameSpec("X", ())
        with pytest.raises(ValueError):
            AmbiguousNameSpec("X", (2, 0))
        with pytest.raises(ValueError):
            AmbiguousNameSpec("X", (2, 2), multi_era=(5,))
        with pytest.raises(ValueError):
            AmbiguousNameSpec("X", (2, 2), multi_era=(0,), bridged=(1,))

    def test_table1_spec_matches_paper_counts(self):
        for spec in TABLE1_SPEC:
            authors, refs = TABLE1_EXPECTED[spec.name]
            assert spec.entity_count == authors, spec.name
            assert spec.total_refs == refs, spec.name

    def test_spec_by_name(self):
        index = spec_by_name(TABLE1_SPEC)
        assert index["Wei Wang"].entity_count == 14


class TestGenerateWorld:
    def test_deterministic(self):
        a = generate_world(SMALL_CONFIG, SMALL_SPECS)
        b = generate_world(SMALL_CONFIG, SMALL_SPECS)
        assert a.stats() == b.stats()
        assert [p.author_entity_ids for p in a.papers[:50]] == [
            p.author_entity_ids for p in b.papers[:50]
        ]

    def test_different_seed_different_world(self):
        a = generate_world(SMALL_CONFIG, SMALL_SPECS)
        b = generate_world(
            GeneratorConfig(**{**SMALL_CONFIG.__dict__, "seed": 99}), SMALL_SPECS
        )
        assert [p.author_entity_ids for p in a.papers[:50]] != [
            p.author_entity_ids for p in b.papers[:50]
        ]

    def test_ambiguous_entities_match_spec(self, small_world):
        for spec in SMALL_SPECS:
            entities = small_world.entities_named(spec.name)
            assert len(entities) == spec.entity_count
            counts = sorted(
                len(small_world.papers_of(e.entity_id)) for e in entities
            )
            assert counts == sorted(spec.ref_counts)

    def test_ambiguous_papers_never_solo(self, small_world):
        for spec in SMALL_SPECS:
            for entity in small_world.entities_named(spec.name):
                for paper in small_world.papers_of(entity.entity_id):
                    assert len(paper.author_entity_ids) >= 2

    def test_entity_kinds(self, small_world):
        kinds = {e.kind for e in small_world.entities}
        assert kinds == {"regular", "rare", "ambiguous"}

    def test_rare_names_unique(self, small_world):
        rare_names = [e.name for e in small_world.entities if e.kind == "rare"]
        assert len(rare_names) == len(set(rare_names))

    def test_multi_era_entity_has_two_communities(self, small_world):
        specs = spec_by_name(SMALL_SPECS)
        jim_smiths = small_world.entities_named("Jim Smith")
        multi = [e for e in jim_smiths if len(e.communities) == 2]
        assert len(multi) == len(specs["Jim Smith"].multi_era)

    def test_scale_grows_world(self):
        small = generate_world(SMALL_CONFIG, SMALL_SPECS)
        bigger = generate_world(
            GeneratorConfig(**{**SMALL_CONFIG.__dict__, "scale": 2.0}), SMALL_SPECS
        )
        assert bigger.stats()["papers"] > 1.5 * small.stats()["papers"]

    def test_citations_optional(self):
        cfg = GeneratorConfig(**{**SMALL_CONFIG.__dict__, "with_citations": True})
        world = generate_world(cfg, SMALL_SPECS)
        assert any(p.citations for p in world.papers)
        # citations point backward in time
        papers = {p.paper_id: p for p in world.papers}
        for paper in world.papers:
            for cited in paper.citations:
                assert papers[cited].year < paper.year


class TestWorldToDatabase:
    def test_integrity_and_sizes(self, small_world):
        db, truth = world_to_database(small_world)
        db.check_integrity()
        stats = small_world.stats()
        assert len(db.table("Publications")) == stats["papers"]
        assert len(db.table("Publish")) == stats["authorships"]
        assert len(db.table("Authors")) == stats["distinct_names"]

    def test_ground_truth_covers_every_authorship(self, small_world):
        db, truth = world_to_database(small_world)
        assert len(truth.entity_of_row) == len(db.table("Publish"))

    def test_ambiguous_name_shares_one_author_row(self, small_world):
        db, truth = world_to_database(small_world)
        assert "Wei Wang" in truth.author_row_of_name
        rows = truth.rows_of_name["Wei Wang"]
        author_pos = db.table("Publish").schema.position("author_key")
        keys = {db.table("Publish").row(r)[author_pos] for r in rows}
        assert len(keys) == 1

    def test_gold_clusters_partition_references(self, small_world):
        db, truth = world_to_database(small_world)
        clusters = truth.clusters_for("Wei Wang")
        all_rows = sorted(row for rows in clusters.values() for row in rows)
        assert all_rows == sorted(truth.rows_of_name["Wei Wang"])
        assert len(clusters) == 3

    def test_citations_loaded_when_requested(self):
        cfg = GeneratorConfig(**{**SMALL_CONFIG.__dict__, "with_citations": True})
        world = generate_world(cfg, SMALL_SPECS)
        db, _ = world_to_database(world, with_citations=True)
        assert len(db.table("Cites")) > 0
        db.check_integrity()

    def test_proceedings_unique_per_conf_year(self, small_world):
        db, _ = world_to_database(small_world)
        proc = db.table("Proceedings")
        pairs = [(row[1], row[2]) for row in proc.rows]
        assert len(pairs) == len(set(pairs))
