import random

import pytest

from repro.data.names import (
    COMMON_GIVEN,
    COMMON_SURNAMES,
    RARE_GIVEN,
    RARE_SURNAMES,
    NameFrequencyModel,
    NameSampler,
    PersonName,
    zipf_weights,
)


class TestPersonName:
    def test_full_and_parse_round_trip(self):
        name = PersonName("Wei", "Wang")
        assert name.full == "Wei Wang"
        assert PersonName.parse("Wei Wang") == name

    def test_parse_multi_token_first(self):
        name = PersonName.parse("Juan Carlos Perez")
        assert name.first == "Juan Carlos"
        assert name.last == "Perez"

    def test_parse_single_token(self):
        name = PersonName.parse("Aristotle")
        assert name.first == ""
        assert name.last == "Aristotle"


class TestZipfWeights:
    def test_monotone_decreasing(self):
        weights = zipf_weights(20)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_head_much_heavier_than_tail(self):
        weights = zipf_weights(100)
        assert weights[0] / weights[-1] > 50


class TestNameSampler:
    def test_common_names_come_from_pools(self):
        sampler = NameSampler(random.Random(0))
        for _ in range(50):
            name = sampler.sample_common()
            assert name.first in COMMON_GIVEN
            assert name.last in COMMON_SURNAMES

    def test_rare_unique_never_repeats(self):
        sampler = NameSampler(random.Random(0))
        taken: set[str] = set()
        names = [sampler.sample_rare_unique(taken) for _ in range(200)]
        fulls = [n.full for n in names]
        assert len(set(fulls)) == 200
        assert taken == set(fulls)

    def test_rare_names_use_rare_pools(self):
        sampler = NameSampler(random.Random(1))
        name = sampler.sample_rare_unique(set())
        assert name.first in RARE_GIVEN
        assert name.last in RARE_SURNAMES

    def test_deterministic_given_seed(self):
        a = NameSampler(random.Random(5)).sample_common()
        b = NameSampler(random.Random(5)).sample_common()
        assert a == b


class TestNameFrequencyModel:
    NAMES = [
        "Wei Wang", "Wei Li", "Wei Chen", "John Wang",
        "Zebulon Quarrington", "Ottilie Fernsby", "Zebulon Fernsby",
    ]

    def test_token_frequencies(self):
        model = NameFrequencyModel(self.NAMES)
        assert model.first_frequency("Wei Wang") == 3
        assert model.last_frequency("Wei Wang") == 2
        assert model.first_frequency("Zebulon Quarrington") == 2

    def test_is_rare_requires_both_tokens_rare(self):
        model = NameFrequencyModel(self.NAMES, max_token_count=2)
        assert not model.is_rare("Wei Wang")  # Wei x3
        assert model.is_rare("Ottilie Fernsby")  # 1 and 2
        assert model.is_rare("Zebulon Quarrington")  # 2 and 1

    def test_threshold_parameter(self):
        strict = NameFrequencyModel(self.NAMES, max_token_count=1)
        assert not strict.is_rare("Zebulon Quarrington")  # Zebulon x2

    def test_rare_names_filter(self):
        model = NameFrequencyModel(self.NAMES)
        rare = model.rare_names(self.NAMES)
        assert "Ottilie Fernsby" in rare
        assert "Wei Wang" not in rare

    def test_single_token_names_never_rare(self):
        model = NameFrequencyModel(["Aristotle", "Plato"])
        assert not model.is_rare("Aristotle")
