"""World object API coverage."""

import pytest

from repro.data.world import AuthorEntity, Conference, Paper, World


@pytest.fixture()
def tiny_world():
    world = World()
    world.entities = [
        AuthorEntity(0, "A B", "regular", (0,), ("Inst X",)),
        AuthorEntity(1, "C D", "rare", (1,), ("Inst Y",)),
        AuthorEntity(2, "A B", "ambiguous", (1,), ("Inst Z",)),
    ]
    world.conferences = [Conference(0, "Conf", 0, "ACM")]
    world.papers = [
        Paper(0, "t0", 2000, 0, (0, 1)),
        Paper(1, "t1", 2001, 0, (2,)),
        Paper(2, "t2", 2002, 0, (0,)),
    ]
    world.ambiguous_names = ["A B"]
    return world


class TestWorldApi:
    def test_entity_lookup(self, tiny_world):
        assert tiny_world.entity(1).name == "C D"

    def test_entities_named(self, tiny_world):
        assert len(tiny_world.entities_named("A B")) == 2
        assert tiny_world.entities_named("Nobody") == []

    def test_papers_of(self, tiny_world):
        assert [p.paper_id for p in tiny_world.papers_of(0)] == [0, 2]
        assert [p.paper_id for p in tiny_world.papers_of(2)] == [1]

    def test_stats(self, tiny_world):
        stats = tiny_world.stats()
        assert stats == {
            "entities": 3,
            "distinct_names": 2,
            "conferences": 1,
            "papers": 3,
            "authorships": 4,
        }

    def test_world_to_database_collapses_names(self, tiny_world):
        from repro.data.world import world_to_database

        db, truth = world_to_database(tiny_world, prepared=False)
        assert len(db.table("Authors")) == 2  # "A B" collapses
        gold = truth.clusters_for("A B")
        assert len(gold) == 2  # but ground truth separates the entities
        assert truth.entity_labels[0] == "Inst X"
