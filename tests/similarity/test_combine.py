import math

import pytest

from repro.similarity import (
    PathWeights,
    combine,
    geometric_mean,
    normalize_feature_rows,
    uniform_weights,
)


class TestPathWeights:
    def test_negative_weights_clamped_by_default(self):
        weights = PathWeights([0.5, -0.2, 0.0])
        assert weights.weights == [0.5, 0.0, 0.0]

    def test_clamping_can_be_disabled(self):
        weights = PathWeights([0.5, -0.2], clamp_negative=False)
        assert weights.weights == [0.5, -0.2]

    def test_apply_is_dot_product(self):
        weights = PathWeights([2.0, 3.0])
        assert weights.apply([1.0, 1.0]) == pytest.approx(5.0)
        assert combine(weights, [0.5, 0.0]) == pytest.approx(1.0)

    def test_apply_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            PathWeights([1.0]).apply([1.0, 2.0])

    def test_normalized_sums_to_one(self):
        weights = PathWeights([2.0, 6.0]).normalized()
        assert weights.total() == pytest.approx(1.0)
        assert weights.weights == pytest.approx([0.25, 0.75])

    def test_normalized_all_zero_is_identity(self):
        weights = PathWeights([0.0, 0.0]).normalized()
        assert weights.weights == [0.0, 0.0]

    def test_uniform_weights(self):
        weights = uniform_weights(4)
        assert weights.total() == pytest.approx(1.0)
        assert len(weights) == 4
        with pytest.raises(ValueError):
            uniform_weights(0)


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean(0.25, 1.0) == pytest.approx(0.5)

    def test_zero_if_either_zero(self):
        assert geometric_mean(0.0, 0.9) == 0.0
        assert geometric_mean(0.9, 0.0) == 0.0

    def test_negative_treated_as_zero(self):
        assert geometric_mean(-0.1, 0.5) == 0.0

    def test_bounded_by_max_ingredient(self):
        assert geometric_mean(0.4, 0.9) <= 0.9

    def test_symmetry(self):
        assert geometric_mean(0.3, 0.7) == geometric_mean(0.7, 0.3)


class TestNormalizeFeatureRows:
    def test_columns_scaled_to_unit_max(self):
        rows = normalize_feature_rows([[2.0, 0.1], [1.0, 0.05]])
        assert rows == [[1.0, 1.0], [0.5, 0.5]]

    def test_zero_column_stays_zero(self):
        rows = normalize_feature_rows([[0.0, 1.0], [0.0, 0.5]])
        assert rows == [[0.0, 1.0], [0.0, 0.5]]

    def test_empty_input(self):
        assert normalize_feature_rows([]) == []

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            normalize_feature_rows([[1.0], [1.0, 2.0]])

    def test_negative_values_normalized_by_magnitude(self):
        rows = normalize_feature_rows([[-2.0], [1.0]])
        assert rows == [[-1.0], [0.5]]
