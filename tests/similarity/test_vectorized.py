import numpy as np
import pytest

from repro.paths import JoinPath, ProfileBuilder
from repro.paths.propagation import make_exclusions
from repro.reldb.joins import JoinStep
from repro.similarity import walk_probability
from repro.similarity.vectorized import (
    pairwise_walk_matrices,
    pairwise_walk_matrix,
    profile_matrices,
)

from tests.minidb import WW_AUTHOR_ROW, WW_REFS, build_minidb

PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
COAUTHOR = JoinPath(
    [PUB_PAP, PUB_PAP.reverse(), JoinStep("Publish", "author_key", "Authors", "author_key", "n1")]
)


@pytest.fixture(scope="module")
def ww_profiles():
    db = build_minidb()
    builder = ProfileBuilder(db, [COAUTHOR], make_exclusions(Authors={WW_AUTHOR_ROW}))
    return [builder.profile(COAUTHOR, row) for row in WW_REFS]


class TestProfileMatrices:
    def test_shapes_and_values(self, ww_profiles):
        forward, backward = profile_matrices(ww_profiles)
        assert forward.shape == backward.shape
        assert forward.shape[0] == len(WW_REFS)
        # Row sums equal forward masses.
        masses = np.asarray(forward.sum(axis=1)).ravel()
        for mass, profile in zip(masses, ww_profiles):
            assert mass == pytest.approx(profile.forward_mass())

    def test_empty_input(self):
        matrix = pairwise_walk_matrix([])
        assert matrix.shape == (0, 0)


class TestPairwiseWalkMatrix:
    def test_matches_scalar_implementation(self, ww_profiles):
        matrix = pairwise_walk_matrix(ww_profiles)
        n = len(ww_profiles)
        for i in range(n):
            for j in range(n):
                if i == j:
                    assert matrix[i, j] == 0.0
                else:
                    expected = walk_probability(ww_profiles[i], ww_profiles[j])
                    assert matrix[i, j] == pytest.approx(expected)

    def test_symmetric(self, ww_profiles):
        matrix = pairwise_walk_matrix(ww_profiles)
        assert np.allclose(matrix, matrix.T)

    def test_known_value(self, ww_profiles):
        # walk(r0, r6) = (1/8 + 1/6) / 2 from the worked example.
        matrix = pairwise_walk_matrix(ww_profiles)
        assert matrix[0, 2] == pytest.approx((1 / 8 + 1 / 6) / 2)

    def test_per_path_wrapper(self, ww_profiles):
        result = pairwise_walk_matrices({COAUTHOR: ww_profiles})
        assert set(result) == {COAUTHOR}
        assert result[COAUTHOR].shape == (4, 4)


class TestVectorizedOnLargerWorld:
    def test_equivalence_on_fixture_world(self, fitted, small_db):
        db, truth = small_db
        rows = truth.rows_of_name["Wei Wang"]
        from repro.core.references import exclusions_for_name

        builder = ProfileBuilder(
            db, fitted.paths_, exclusions_for_name(db, "Wei Wang", fitted.config)
        )
        path = fitted.paths_[5]
        profiles = [builder.profile(path, row) for row in rows]
        matrix = pairwise_walk_matrix(profiles)
        for i in (0, 3, 7):
            for j in (1, 5, 11):
                expected = walk_probability(profiles[i], profiles[j])
                assert matrix[i, j] == pytest.approx(expected)
