import math

import pytest

from repro.paths import JoinPath
from repro.paths.profiles import NeighborProfile
from repro.paths.propagation import PropagationEngine, make_exclusions
from repro.reldb.joins import JoinStep
from repro.similarity import (
    directed_walk_probability,
    set_resemblance,
    walk_probability,
)
from repro.similarity.randomwalk import walk_vector
from repro.similarity.resemblance import resemblance_vector

from tests.minidb import WW_AUTHOR_ROW, build_minidb

PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
COAUTHOR = JoinPath([PUB_PAP, PUB_PAP.reverse(),
                     JoinStep("Publish", "author_key", "Authors", "author_key", "n1")])


def profile(weights: dict[int, tuple[float, float]]) -> NeighborProfile:
    return NeighborProfile(path=COAUTHOR, origin_row=0, weights=weights)


class TestSetResemblance:
    def test_identical_profiles_have_resemblance_one(self):
        p = profile({1: (0.5, 0.2), 2: (0.5, 0.1)})
        assert set_resemblance(p, p) == pytest.approx(1.0)

    def test_disjoint_supports_have_resemblance_zero(self):
        a = profile({1: (0.5, 0.2)})
        b = profile({2: (0.5, 0.2)})
        assert set_resemblance(a, b) == 0.0

    def test_empty_profile_gives_zero(self):
        a = profile({})
        b = profile({1: (1.0, 1.0)})
        assert set_resemblance(a, b) == 0.0
        assert set_resemblance(b, a) == 0.0

    def test_hand_computed_weighted_jaccard(self):
        a = profile({1: (0.5, 0.0), 2: (0.5, 0.0)})
        b = profile({1: (1.0, 0.0)})
        # min: 0.5 ; max: 1.0 (t=1) + 0.5 (t=2 only in a) = 1.5
        assert set_resemblance(a, b) == pytest.approx(1 / 3)

    def test_symmetry(self):
        a = profile({1: (0.3, 0.0), 2: (0.7, 0.0)})
        b = profile({2: (0.4, 0.0), 3: (0.6, 0.0)})
        assert set_resemblance(a, b) == pytest.approx(set_resemblance(b, a))

    def test_on_minidb_references(self):
        db = build_minidb()
        engine = PropagationEngine(db, make_exclusions(Authors={WW_AUTHOR_ROW}))
        p0 = NeighborProfile.from_result(engine.propagate(COAUTHOR, 0))
        p6 = NeighborProfile.from_result(engine.propagate(COAUTHOR, 6))
        p3 = NeighborProfile.from_result(engine.propagate(COAUTHOR, 3))
        assert set_resemblance(p0, p6) == pytest.approx(1 / 3)
        assert set_resemblance(p0, p3) == 0.0


class TestWalkProbability:
    def test_directed_walk_hand_computed(self):
        db = build_minidb()
        engine = PropagationEngine(db, make_exclusions(Authors={WW_AUTHOR_ROW}))
        p0 = NeighborProfile.from_result(engine.propagate(COAUTHOR, 0))
        p6 = NeighborProfile.from_result(engine.propagate(COAUTHOR, 6))
        # fwd_0(a1)=0.5, rev_6(a1)=1/4 ; fwd_6(a1)=1.0, rev_0(a1)=1/6
        assert directed_walk_probability(p0, p6) == pytest.approx(0.125)
        assert directed_walk_probability(p6, p0) == pytest.approx(1 / 6)
        assert walk_probability(p0, p6) == pytest.approx((0.125 + 1 / 6) / 2)

    def test_walk_zero_for_disjoint(self):
        a = profile({1: (0.5, 0.5)})
        b = profile({2: (0.5, 0.5)})
        assert walk_probability(a, b) == 0.0

    def test_walk_empty_profile(self):
        a = profile({})
        b = profile({1: (1.0, 1.0)})
        assert walk_probability(a, b) == 0.0

    def test_walk_symmetric_measure_is_symmetric(self):
        a = profile({1: (0.5, 0.3), 2: (0.5, 0.1)})
        b = profile({1: (0.2, 0.9), 3: (0.8, 0.2)})
        assert walk_probability(a, b) == pytest.approx(walk_probability(b, a))

    def test_walk_bounded_by_one(self):
        a = profile({1: (1.0, 1.0)})
        b = profile({1: (1.0, 1.0)})
        assert walk_probability(a, b) == pytest.approx(1.0)


class TestVectors:
    def test_vectors_align_on_path_keys(self):
        db = build_minidb()
        engine = PropagationEngine(db, make_exclusions(Authors={WW_AUTHOR_ROW}))
        paper_path = JoinPath([PUB_PAP])
        profs0 = {
            COAUTHOR: NeighborProfile.from_result(engine.propagate(COAUTHOR, 0)),
            paper_path: NeighborProfile.from_result(engine.propagate(paper_path, 0)),
        }
        profs6 = {
            COAUTHOR: NeighborProfile.from_result(engine.propagate(COAUTHOR, 6)),
            paper_path: NeighborProfile.from_result(engine.propagate(paper_path, 6)),
        }
        resem = resemblance_vector(profs0, profs6)
        walk = walk_vector(profs0, profs6)
        assert len(resem) == len(walk) == 2
        assert resem[0] == pytest.approx(1 / 3)
        assert resem[1] == 0.0  # different papers
