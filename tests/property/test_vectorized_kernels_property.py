"""Property tests: the vectorized kernels equal the scalar reference.

Random profiles honoring the propagation invariants are pushed through
both implementations; values must agree to floating-point reassociation
tolerance on every pair, for every chunking configuration.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.paths import JoinPath
from repro.paths.profiles import NeighborProfile
from repro.reldb.joins import JoinStep
from repro.similarity import set_resemblance, walk_probability
from repro.similarity.vectorized import (
    pair_resemblance_values,
    pair_walk_values,
    pairwise_resemblance_matrix,
    pairwise_walk_matrix,
    profile_matrices,
)

PATH = JoinPath([JoinStep("A", "x", "B", "y", "n1")])

ATOL = 1e-12

probability = st.floats(
    min_value=1e-6, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def profiles(draw):
    """One random profile: forward a sub-distribution, backward in (0, 1]."""
    support = draw(st.sets(st.integers(min_value=0, max_value=15), max_size=10))
    forwards = {t: draw(probability) for t in support}
    total = sum(forwards.values())
    if total > 1.0:
        forwards = {t: v / total for t, v in forwards.items()}
    weights = {t: (forwards[t], draw(probability)) for t in support}
    return NeighborProfile(path=PATH, origin_row=0, weights=weights)


profile_lists = st.lists(profiles(), min_size=1, max_size=7)


class TestAllPairsMatrices:
    @given(profile_lists, st.integers(min_value=64, max_value=4096))
    @settings(max_examples=60, deadline=None)
    def test_resemblance_matrix_matches_scalar(self, group, chunk_bytes):
        matrix = pairwise_resemblance_matrix(group, chunk_bytes=chunk_bytes)
        n = len(group)
        assert matrix.shape == (n, n)
        for i in range(n):
            assert matrix[i, i] == 0.0
            for j in range(n):
                if i != j:
                    expected = set_resemblance(group[i], group[j])
                    assert matrix[i, j] == pytest.approx(expected, abs=ATOL)

    @given(profile_lists)
    @settings(max_examples=60, deadline=None)
    def test_walk_matrix_matches_scalar(self, group):
        matrix = pairwise_walk_matrix(group)
        for i in range(len(group)):
            for j in range(len(group)):
                expected = (
                    0.0 if i == j else walk_probability(group[i], group[j])
                )
                assert matrix[i, j] == pytest.approx(expected, abs=ATOL)

    @given(profile_lists)
    @settings(max_examples=40, deadline=None)
    def test_sparse_walk_branch_equals_dense(self, group):
        dense = pairwise_walk_matrix(group, dense_limit=10**9)
        kept_sparse = pairwise_walk_matrix(group, dense_limit=0)
        assert sparse.issparse(kept_sparse)
        np.testing.assert_allclose(kept_sparse.toarray(), dense, atol=ATOL)


class TestPairListKernels:
    @given(profile_lists, st.data())
    @settings(max_examples=60, deadline=None)
    def test_pair_kernels_match_scalar(self, group, data):
        n = len(group)
        pair_index = st.integers(min_value=0, max_value=n - 1)
        pairs = data.draw(
            st.lists(st.tuples(pair_index, pair_index), min_size=1, max_size=12)
        )
        forward, backward = profile_matrices(group)
        idx_a = np.array([a for a, _ in pairs])
        idx_b = np.array([b for _, b in pairs])
        pair_chunk = data.draw(st.integers(min_value=1, max_value=len(pairs)))
        resem = pair_resemblance_values(forward, idx_a, idx_b, pair_chunk=pair_chunk)
        walk = pair_walk_values(forward, backward, idx_a, idx_b, pair_chunk=pair_chunk)
        for k, (a, b) in enumerate(pairs):
            assert resem[k] == pytest.approx(
                set_resemblance(group[a], group[b]), abs=ATOL
            )
            assert walk[k] == pytest.approx(
                walk_probability(group[a], group[b]), abs=ATOL
            )


class TestProfileMatrices:
    @given(profile_lists)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_weights(self, group):
        forward, backward = profile_matrices(group)
        columns = np.unique(
            np.array(
                [t for p in group for t in p.weights], dtype=np.int64
            )
        )
        assert forward.shape == (len(group), len(columns))
        dense_f = forward.toarray()
        dense_b = backward.toarray()
        col_of = {int(c): k for k, c in enumerate(columns)}
        for i, profile in enumerate(group):
            for t, (fwd, back) in profile.weights.items():
                assert dense_f[i, col_of[t]] == fwd
                assert dense_b[i, col_of[t]] == back
            assert np.count_nonzero(dense_f[i]) <= len(profile.weights)
