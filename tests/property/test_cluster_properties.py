"""Property-based tests for the clustering layer.

The central invariant (§4.2): the *incrementally* maintained cluster
similarities must equal a brute-force recomputation from the original pair
matrices after any sequence of merges.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    AgglomerativeClusterer,
    AverageLinkMeasure,
    CompleteLinkMeasure,
    CompositeMeasure,
    SingleLinkMeasure,
)


@st.composite
def pair_matrix(draw, n_min=2, n_max=8):
    n = draw(st.integers(min_value=n_min, max_value=n_max))
    values = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    matrix = np.zeros((n, n))
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = values[k]
            k += 1
    return matrix


def brute_force(matrix, members_a, members_b, kind):
    values = [matrix[i, j] for i in members_a for j in members_b]
    if kind == "single":
        return max(values)
    if kind == "complete":
        return min(values)
    return sum(values) / len(values)


@st.composite
def matrix_and_merges(draw):
    matrix = draw(pair_matrix(n_min=4))
    n = matrix.shape[0]
    merges = draw(st.integers(min_value=1, max_value=n - 2))
    return matrix, merges


class TestIncrementalEqualsBruteForce:
    @given(matrix_and_merges(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_linkage_measures(self, matrix_merges, rng):
        matrix, n_merges = matrix_merges
        n = matrix.shape[0]
        measures = {
            "single": SingleLinkMeasure(matrix),
            "complete": CompleteLinkMeasure(matrix),
            "average": AverageLinkMeasure(matrix),
        }
        members = {i: {i} for i in range(n)}
        next_id = n
        for _ in range(n_merges):
            active = sorted(members)
            a, b = rng.sample(active, 2)
            for measure in measures.values():
                measure.merge(a, b, next_id)
            members[next_id] = members.pop(a) | members.pop(b)
            next_id += 1

        active = sorted(members)
        for x_idx in range(len(active)):
            for y_idx in range(x_idx + 1, len(active)):
                x, y = active[x_idx], active[y_idx]
                for kind, measure in measures.items():
                    expected = brute_force(matrix, members[x], members[y], kind)
                    assert measure.similarity(x, y) == pytest.approx(
                        expected, abs=1e-9
                    ), kind

    @given(matrix_and_merges(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_composite_measure(self, matrix_merges, rng):
        resem, n_merges = matrix_merges
        walk = resem * 0.25  # any symmetric non-negative matrix works
        measure = CompositeMeasure(resem, walk)
        n = resem.shape[0]
        members = {i: {i} for i in range(n)}
        next_id = n
        for _ in range(n_merges):
            a, b = rng.sample(sorted(members), 2)
            measure.merge(a, b, next_id)
            members[next_id] = members.pop(a) | members.pop(b)
            next_id += 1

        active = sorted(members)
        for i in range(len(active)):
            for j in range(i + 1, len(active)):
                x, y = active[i], active[j]
                ma, mb = members[x], members[y]
                r_sum = sum(resem[p, q] for p in ma for q in mb)
                w_sum = sum(walk[p, q] for p in ma for q in mb)
                avg_resem = r_sum / (len(ma) * len(mb))
                coll_walk = 0.5 * (w_sum / len(ma) + w_sum / len(mb))
                expected = (
                    math.sqrt(avg_resem * coll_walk)
                    if avg_resem > 0 and coll_walk > 0
                    else 0.0
                )
                assert measure.similarity(x, y) == pytest.approx(expected, abs=1e-9)


class TestEngineInvariants:
    @given(pair_matrix())
    @settings(max_examples=80, deadline=None)
    def test_clusters_partition_items(self, matrix):
        result = AgglomerativeClusterer(min_sim=0.3).cluster(
            AverageLinkMeasure(matrix)
        )
        items = sorted(i for cluster in result.clusters for i in cluster)
        assert items == list(range(matrix.shape[0]))

    @given(pair_matrix(), st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_all_merges_meet_threshold(self, matrix, min_sim):
        result = AgglomerativeClusterer(min_sim=min_sim).cluster(
            AverageLinkMeasure(matrix)
        )
        assert all(s >= min_sim for s in result.merge_similarities)

    @given(pair_matrix())
    @settings(max_examples=60, deadline=None)
    def test_threshold_monotonicity(self, matrix):
        low = AgglomerativeClusterer(min_sim=0.1).cluster(AverageLinkMeasure(matrix))
        high = AgglomerativeClusterer(min_sim=0.6).cluster(AverageLinkMeasure(matrix))
        assert low.n_clusters <= high.n_clusters
