"""Property-based tests for the relational substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.reldb import Attribute, Database, ForeignKey, RelationSchema, Schema
from repro.reldb.csvio import load_database, save_database
from repro.reldb.query import count_rows, select

value = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F
        ),
        max_size=8,
    ),
    st.none(),
)


@st.composite
def simple_database(draw):
    """Parent/child two-table database with random rows."""
    n_parents = draw(st.integers(min_value=1, max_value=8))
    n_children = draw(st.integers(min_value=0, max_value=20))

    schema = Schema()
    schema.add_relation(
        RelationSchema(
            "Parent",
            [Attribute("pk", kind="key"), Attribute("label", kind="value")],
        )
    )
    schema.add_relation(
        RelationSchema(
            "Child",
            [Attribute("parent", kind="fk"), Attribute("payload", kind="value")],
        )
    )
    schema.add_foreign_key(ForeignKey("Child", "parent", "Parent", "pk"))
    db = Database(schema)
    for pk in range(n_parents):
        db.insert("Parent", (pk, draw(value)))
    for _ in range(n_children):
        db.insert(
            "Child",
            (draw(st.integers(min_value=0, max_value=n_parents - 1)), draw(value)),
        )
    return db


class TestIndexConsistency:
    @given(simple_database(), st.integers(min_value=0, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_index_lookup_equals_linear_scan(self, db, parent):
        table = db.table("Child")
        index = db.index("Child", "parent")
        scan = [i for i, row in enumerate(table.rows) if row[0] == parent]
        assert index.lookup(parent) == scan
        assert index.count(parent) == len(scan)

    @given(simple_database())
    @settings(max_examples=60, deadline=None)
    def test_index_buckets_partition_rows(self, db):
        index = db.index("Child", "parent")
        covered = sorted(
            row_id for v in index.distinct_values() for row_id in index.lookup(v)
        )
        assert covered == list(range(len(db.table("Child"))))


class TestCsvRoundTrip:
    @given(simple_database())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_everything(self, db):
        import tempfile

        with tempfile.TemporaryDirectory() as directory:
            save_database(db, directory)
            loaded = load_database(directory)
            self._check(db, loaded)

    def _check(self, db, loaded):
        assert loaded.relation_sizes() == db.relation_sizes()
        for name in db.schema.relations:
            assert [tuple(r) for r in loaded.table(name).rows] == [
                tuple(_stringify(v) for v in row) for row in db.table(name).rows
            ]
        loaded.check_integrity()


def _stringify(v):
    """Mirror the CSV format's canonicalization: values persist as text and
    anything that parses as an integer loads as ``int`` (so the string "12"
    legitimately comes back as 12); ``None`` survives via the NULL sentinel."""
    if v is None or isinstance(v, int):
        return v
    try:
        return int(v)
    except (TypeError, ValueError):
        return str(v)


class TestQueryProperties:
    @given(simple_database(), st.integers(min_value=0, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_select_equals_count(self, db, parent):
        selected = list(select(db, "Child", {"parent": parent}))
        assert count_rows(db, "Child", {"parent": parent}) == len(selected)

    @given(simple_database())
    @settings(max_examples=60, deadline=None)
    def test_integrity_always_holds_by_construction(self, db):
        db.check_integrity()
