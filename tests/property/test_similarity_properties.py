"""Property-based tests for the similarity measures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.paths import JoinPath
from repro.paths.profiles import NeighborProfile
from repro.reldb.joins import JoinStep
from repro.similarity import (
    directed_walk_probability,
    geometric_mean,
    set_resemblance,
    walk_probability,
)
from repro.similarity.combine import PathWeights, normalize_feature_rows

PATH = JoinPath([JoinStep("A", "x", "B", "y", "n1")])

probability = st.floats(
    min_value=1e-6, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def profiles(draw):
    """Random profiles honoring the propagation invariants: the forward
    values form a sub-distribution (sum <= 1) and backward values are
    probabilities in (0, 1]."""
    support = draw(st.sets(st.integers(min_value=0, max_value=12), max_size=8))
    forwards = {t: draw(probability) for t in support}
    total = sum(forwards.values())
    if total > 1.0:
        forwards = {t: v / total for t, v in forwards.items()}
    weights = {t: (forwards[t], draw(probability)) for t in support}
    return NeighborProfile(path=PATH, origin_row=0, weights=weights)


class TestResemblanceProperties:
    @given(profiles(), profiles())
    @settings(max_examples=120, deadline=None)
    def test_bounds(self, a, b):
        value = set_resemblance(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(profiles(), profiles())
    @settings(max_examples=120, deadline=None)
    def test_symmetry(self, a, b):
        assert set_resemblance(a, b) == pytest.approx(set_resemblance(b, a))

    @given(profiles())
    @settings(max_examples=80, deadline=None)
    def test_identity(self, a):
        if a.is_empty():
            assert set_resemblance(a, a) == 0.0
        else:
            assert set_resemblance(a, a) == pytest.approx(1.0)

    @given(profiles(), profiles(), profiles())
    @settings(max_examples=100, deadline=None)
    def test_jaccard_distance_triangle_inequality(self, a, b, c):
        # 1 - weighted Jaccard is a metric on non-empty weighted sets.
        if a.is_empty() or b.is_empty() or c.is_empty():
            return
        d_ab = 1 - set_resemblance(a, b)
        d_bc = 1 - set_resemblance(b, c)
        d_ac = 1 - set_resemblance(a, c)
        assert d_ac <= d_ab + d_bc + 1e-9


class TestWalkProperties:
    @given(profiles(), profiles())
    @settings(max_examples=120, deadline=None)
    def test_bounds(self, a, b):
        assert 0.0 <= directed_walk_probability(a, b) <= 1.0 + 1e-9
        assert 0.0 <= walk_probability(a, b) <= 1.0 + 1e-9

    @given(profiles(), profiles())
    @settings(max_examples=120, deadline=None)
    def test_symmetric_measure(self, a, b):
        assert walk_probability(a, b) == pytest.approx(walk_probability(b, a))

    @given(profiles(), profiles())
    @settings(max_examples=120, deadline=None)
    def test_zero_iff_disjoint_support(self, a, b):
        value = walk_probability(a, b)
        if a.support & b.support:
            assert value > 0.0
        else:
            assert value == 0.0


class TestCombineProperties:
    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_clamped_weights_nonnegative(self, raw):
        weights = PathWeights(raw)
        assert all(w >= 0.0 for w in weights.weights)

    @given(
        st.lists(st.floats(0.01, 5, allow_nan=False), min_size=1, max_size=8)
    )
    @settings(max_examples=100, deadline=None)
    def test_normalized_sums_to_one(self, raw):
        assert PathWeights(raw).normalized().total() == pytest.approx(1.0)

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=150, deadline=None)
    def test_geometric_mean_between_zero_and_max(self, a, b):
        value = geometric_mean(a, b)
        assert 0.0 <= value <= max(a, b) + 1e-12

    @given(
        st.lists(
            st.lists(st.floats(0, 10, allow_nan=False), min_size=3, max_size=3),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_normalize_feature_rows_unit_columns(self, rows):
        normalized = normalize_feature_rows(rows)
        for j in range(3):
            column = [abs(row[j]) for row in normalized]
            assert max(column) <= 1.0 + 1e-12
