"""Property test: MinHash blocking recall on cluster-structured supports.

The blocking contract (ISSUE: satellite c): at the default knobs
(bands=32, rows=2) the LSH candidate set must be a *superset* of the
exact intersecting-pair survivors whenever pairs that matter have real
overlap — same-cluster references in the paper's Table-1 worlds share
most of their forward support, so their Jaccard similarity sits well
above the defaults' ~0.5 high-recall threshold. Aggressive knobs trade
recall for pruning; the measured :func:`blocking_recall` must stay a
valid probability and (on these worlds, with fixed seeds) actually drop
below 1.0 so the knob is demonstrably live.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.perf import (
    blocking_recall,
    intersecting_pair_mask,
    minhash_pair_mask,
    minhash_refined_mask,
)

# Defaults mirrored from repro.perf.minhash: P(candidate) = 1-(1-J^2)^32,
# so a same-cluster pair at J >= 0.6 is missed with p < 1e-6.
DEFAULT_BANDS = 32
DEFAULT_ROWS = 2


@st.composite
def clustered_supports(draw):
    """Forward-support matrices with same-cluster Jaccard >= ~0.6.

    Each cluster owns a disjoint column range; every reference in it
    carries the cluster's base support (30 columns) plus a few private
    noise columns from the same range. Cross-cluster pairs are exactly
    disjoint, same-cluster pairs overlap in >= 30 of <= 36 columns.
    """
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    n_clusters = draw(st.integers(min_value=2, max_value=5))
    per_cluster = draw(st.integers(min_value=2, max_value=6))
    span = 45  # columns per cluster range: 30 base + 15 spare for noise
    rows, cols = [], []
    ref = 0
    for cluster in range(n_clusters):
        lo = cluster * span
        base = rng.choice(span, size=30, replace=False) + lo
        for _ in range(per_cluster):
            noise = rng.choice(span, size=3, replace=False) + lo
            support = np.unique(np.concatenate([base, noise]))
            rows.extend([ref] * len(support))
            cols.extend(support.tolist())
            ref += 1
    matrix = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(ref, n_clusters * span)
    )
    return matrix


def _pair_grid(n):
    return np.triu_indices(n, k=1)


@settings(max_examples=25, deadline=None)
@given(matrix=clustered_supports())
def test_default_knobs_have_perfect_recall(matrix):
    ia, ib = _pair_grid(matrix.shape[0])
    exact = intersecting_pair_mask([matrix], ia, ib)
    candidates = minhash_pair_mask(
        [matrix], ia, ib, bands=DEFAULT_BANDS, rows=DEFAULT_ROWS
    )
    assert blocking_recall(exact, candidates) == 1.0


@settings(max_examples=25, deadline=None)
@given(matrix=clustered_supports())
def test_refined_mask_equals_exact_at_default_knobs(matrix):
    # Perfect recall + exact re-check => the refined mask IS the exact
    # mask, which is what keeps default clusterings byte-identical.
    ia, ib = _pair_grid(matrix.shape[0])
    exact = intersecting_pair_mask([matrix], ia, ib)
    refined = minhash_refined_mask(
        [matrix], ia, ib, bands=DEFAULT_BANDS, rows=DEFAULT_ROWS
    )
    np.testing.assert_array_equal(refined, exact)


@settings(max_examples=25, deadline=None)
@given(
    matrix=clustered_supports(),
    bands=st.integers(min_value=1, max_value=4),
    rows=st.integers(min_value=6, max_value=10),
)
def test_aggressive_knobs_keep_recall_a_probability(matrix, bands, rows):
    ia, ib = _pair_grid(matrix.shape[0])
    exact = intersecting_pair_mask([matrix], ia, ib)
    candidates = minhash_pair_mask([matrix], ia, ib, bands=bands, rows=rows)
    recall = blocking_recall(exact, candidates)
    assert 0.0 <= recall <= 1.0
    # Aggressive or not, the refined mask never invents a pair.
    refined = minhash_refined_mask([matrix], ia, ib, bands=bands, rows=rows)
    assert not (refined & ~exact).any()


def test_aggressive_knobs_measurably_lose_recall():
    """One band of 10 rows demands J ~ 1.0; noisy pairs must drop out.

    Fixed seed makes this deterministic: noise columns push same-cluster
    Jaccard to ~0.82, so P(candidate) = J^10 ~ 0.14 per pair and some of
    the ~160 exact pairs are certainly missed.
    """
    rng = np.random.default_rng(1234)
    span, n_clusters, per_cluster = 45, 4, 5
    rows, cols = [], []
    ref = 0
    for cluster in range(n_clusters):
        lo = cluster * span
        base = rng.choice(span, size=30, replace=False) + lo
        for _ in range(per_cluster):
            noise = rng.choice(span, size=5, replace=False) + lo
            support = np.unique(np.concatenate([base, noise]))
            rows.extend([ref] * len(support))
            cols.extend(support.tolist())
            ref += 1
    matrix = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(ref, n_clusters * span)
    )
    ia, ib = _pair_grid(ref)
    exact = intersecting_pair_mask([matrix], ia, ib)
    candidates = minhash_pair_mask([matrix], ia, ib, bands=1, rows=10, seed=0)
    recall = blocking_recall(exact, candidates)
    assert 0.0 < recall < 1.0
