"""Property: delta ingest == cold refit, byte for byte.

Random grown worlds split into (base, delta): an :class:`IngestEngine`
that resolved every name pre-delta and then applies the delta must
produce exactly the rows, clusters, pair matrices, dendrogram merges,
and merge similarities of a cold ``prepare``/``cluster_prepared`` on
the post-delta database with the same fitted models — across
similarity/propagation backends, pair pruning modes, and ``workers=4``
— plus a crash-mid-ingest + resume chaos case through the resilient
runner.

The fitted models come from the session-scoped ``fitted`` fixture (the
full small world); each case re-binds them to a pre-delta base via
``Distinct.from_models``, which is exactly the live-service situation
delta ingest models: the models are held fixed, only the database grows.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distinct import Distinct
from repro.data.deltas import grow_world, split_world
from repro.ingest import IngestEngine, ingest_checkpoint, ingest_resilient
from repro.resilience import ErrorCollector, FaultInjected, FaultPlan, fault_plan

NAMES = ["Wei Wang", "Rakesh Kumar", "Jim Smith"]
MIN_SIM = 0.4

BACKENDS = [
    pytest.param("scalar", "scalar", False, id="scalar"),
    pytest.param("vectorized", "batched", False, id="vectorized"),
    pytest.param("vectorized", "batched", "exact", id="pruned-exact"),
    pytest.param("vectorized", "batched", "minhash", id="pruned-minhash"),
]


def snapshot(resolution):
    """Everything byte-identity compares for one resolved name."""
    clustering = resolution.clustering
    return {
        "rows": list(resolution.rows),
        "clusters": sorted(sorted(c) for c in resolution.clusters),
        "resem": resolution.resem_matrix.tobytes()
        if resolution.resem_matrix is not None
        else None,
        "walk": resolution.walk_matrix.tobytes()
        if resolution.walk_matrix is not None
        else None,
        "merges": list(clustering.dendrogram.merges) if clustering else [],
        "sims": np.asarray(clustering.merge_similarities).tobytes()
        if clustering
        else b"",
    }


def rebind(fitted, db, **config_overrides):
    """The fitted models bound to another database instance."""
    config = replace(fitted.config, **config_overrides)
    return Distinct.from_models(
        db, fitted.resem_model_, fitted.walk_model_, config
    )


def ingest_vs_cold(fitted, world, n_delta, seed, workers=1, **config_overrides):
    """Run the engine over a grown-world split; assert equality per name."""
    grown = grow_world(world, n_delta, seed=seed)
    split = split_world(grown, n_delta)

    warm = rebind(fitted, split.base, **config_overrides)
    engine = IngestEngine(warm, min_sim=MIN_SIM)
    for name in NAMES:
        engine.resolve(name)
    report = engine.ingest(split.delta, workers=workers)

    from repro.data.world import world_to_database

    post_db, _ = world_to_database(grown)
    cold = rebind(fitted, post_db, **config_overrides)
    for name in NAMES:
        expected = cold.cluster_prepared(cold.prepare(name), min_sim=MIN_SIM)
        assert snapshot(report.resolution(name)) == snapshot(expected), (
            f"{name}: delta ingest diverged from cold refit "
            f"(seed={seed}, n_delta={n_delta})"
        )
    return report


class TestByteIdentity:
    @settings(max_examples=5, deadline=None)
    @given(
        n_delta=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_split_matches_cold_refit(
        self, fitted, small_world, n_delta, seed
    ):
        ingest_vs_cold(
            fitted,
            small_world,
            n_delta,
            seed,
            similarity_backend="vectorized",
            propagation_backend="batched",
        )

    @pytest.mark.parametrize("similarity,propagation,pruning", BACKENDS)
    def test_every_backend_matches_cold_refit(
        self, fitted, small_world, similarity, propagation, pruning
    ):
        ingest_vs_cold(
            fitted,
            small_world,
            12,
            seed=5,
            similarity_backend=similarity,
            propagation_backend=propagation,
            pair_pruning=pruning,
        )

    def test_parallel_ingest_matches_cold_refit(self, fitted, small_world):
        report = ingest_vs_cold(
            fitted,
            small_world,
            12,
            seed=5,
            workers=4,
            similarity_backend="vectorized",
            propagation_backend="batched",
        )
        assert report.names_refreshed or report.names_clean

    def test_parallel_equals_serial(self, fitted, small_world):
        grown = grow_world(small_world, 10, seed=9)
        split = split_world(grown, 10)
        snaps = []
        for workers in (1, 4):
            warm = rebind(
                fitted,
                split_world(grown, 10).base,
                similarity_backend="vectorized",
                propagation_backend="batched",
            )
            engine = IngestEngine(warm, min_sim=MIN_SIM)
            for name in NAMES:
                engine.resolve(name)
            report = engine.ingest(split.delta, workers=workers)
            snaps.append({n: snapshot(report.resolution(n)) for n in NAMES})
        assert snaps[0] == snaps[1]


class TestCrashMidIngestResume:
    """Chaos: a crash between names loses at most the in-flight name."""

    def test_faulted_run_resumes_byte_identical(
        self, fitted, small_world, small_db, tmp_path
    ):
        grown = grow_world(small_world, 8, seed=21)
        split = split_world(grown, 8)
        store_path = tmp_path / "ingest.ckpt.json"

        def runner(checkpoint):
            warm = rebind(
                fitted,
                split_world(grown, 8).base,
                similarity_backend="vectorized",
                propagation_backend="batched",
            )
            return ingest_resilient(
                warm,
                split.truth,
                NAMES,
                split.delta,
                MIN_SIM,
                checkpoint=checkpoint,
            )

        baseline = runner(None)
        assert baseline.complete and not baseline.errors

        # Crash on the second name mid-refresh; the first is checkpointed.
        store = ingest_checkpoint(store_path, NAMES, split.delta, MIN_SIM, "exact")
        plan = FaultPlan().fail_at("ingest.refresh", item=NAMES[1])
        with fault_plan(plan), pytest.raises(FaultInjected):
            runner(store)
        assert store.exists()
        payload = store.load()
        assert [e["name"] for e in payload["completed"]] == [NAMES[0]]
        assert not payload.get("complete", False)

        # Resume: the checkpointed name is loaded, the rest re-ingested.
        resumed = runner(
            ingest_checkpoint(store_path, NAMES, split.delta, MIN_SIM, "exact")
        )
        assert resumed.complete and not resumed.errors
        assert [r.name for r in resumed.result.names] == NAMES
        for got, want in zip(resumed.result.names, baseline.result.names):
            assert got.name == want.name
            assert got.scores == want.scores
            assert got.n_clusters == want.n_clusters

    def test_collect_policy_scores_the_rest(self, fitted, small_world):
        grown = grow_world(small_world, 8, seed=21)
        split = split_world(grown, 8)
        warm = rebind(
            fitted,
            split_world(grown, 8).base,
            similarity_backend="vectorized",
            propagation_backend="batched",
        )
        collector = ErrorCollector()
        with fault_plan(FaultPlan().fail_at("ingest.refresh", item=NAMES[1])):
            outcome = ingest_resilient(
                warm,
                split.truth,
                NAMES,
                split.delta,
                MIN_SIM,
                policy="collect",
                collector=collector,
            )
        assert collector.items() == [NAMES[1]]
        assert [r.name for r in outcome.result.names] == [NAMES[0], NAMES[2]]
