"""Property-based tests: k-medoids partitions, dendrogram cuts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.dendrogram import Dendrogram
from repro.cluster.kmedoids import kmedoids


@st.composite
def sim_matrix(draw, n_min=2, n_max=9):
    n = draw(st.integers(min_value=n_min, max_value=n_max))
    vals = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    m = np.ones((n, n))
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            m[i, j] = m[j, i] = vals[k]
            k += 1
    return m


class TestKMedoidsProperties:
    @given(sim_matrix(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_partition_with_k_clusters(self, matrix, data):
        n = matrix.shape[0]
        k = data.draw(st.integers(min_value=1, max_value=n))
        clusters = kmedoids(matrix, k=k)
        assert len(clusters) == k
        items = sorted(i for c in clusters for i in c)
        assert items == list(range(n))

    @given(sim_matrix())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, matrix):
        k = max(1, matrix.shape[0] // 2)
        assert kmedoids(matrix, k=k) == kmedoids(matrix, k=k)


@st.composite
def random_dendrogram(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    dendrogram = Dendrogram(n_leaves=n)
    active = list(range(n))
    rng_values = draw(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=n - 1, max_size=n - 1)
    )
    for sim in rng_values:
        if len(active) < 2:
            break
        left, right = active[0], active[1]
        merged = dendrogram.record(left, right, sim)
        active = active[2:] + [merged]
    return dendrogram


class TestDendrogramProperties:
    @given(random_dendrogram(), st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_cut_is_partition(self, dendrogram, threshold):
        clusters = dendrogram.cut(threshold)
        items = sorted(i for c in clusters for i in c)
        assert items == list(range(dendrogram.n_leaves))

    @given(random_dendrogram())
    @settings(max_examples=60, deadline=None)
    def test_cut_monotone_in_threshold(self, dendrogram):
        low = dendrogram.cut(0.0)
        high = dendrogram.cut(1.1)
        assert len(low) <= len(high)
        assert len(high) == dendrogram.n_leaves

    @given(random_dendrogram(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_cut_k_returns_k_when_reachable(self, dendrogram, data):
        max_k = dendrogram.n_leaves
        k = data.draw(st.integers(min_value=1, max_value=max_k))
        clusters = dendrogram.cut_k(k)
        # k is reachable unless the merge history ran out first.
        reachable = dendrogram.n_leaves - dendrogram.n_merges
        assert len(clusters) == max(k, reachable)
