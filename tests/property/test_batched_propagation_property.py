"""Property test: batched SpMM propagation == scalar engine on random DBs.

Random three-level chain databases (the same generator family as the trie
equivalence suite), random global exclusions, memo on and off — the
batched backend must reproduce every scalar profile to 1e-12.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.paths import JoinPath, PropagationEngine
from repro.paths.batch import batch_profile_matrices
from repro.perf.memo import FanoutMemo
from repro.reldb import Attribute, Database, ForeignKey, RelationSchema, Schema
from repro.reldb.joins import steps_for_foreign_key

ATOL = 1e-12


@st.composite
def chain_database(draw):
    """A three-level chain DB: Refs -> Mid -> Top, with random fan-out."""
    n_top = draw(st.integers(min_value=1, max_value=4))
    n_mid = draw(st.integers(min_value=1, max_value=8))
    n_refs = draw(st.integers(min_value=2, max_value=15))

    schema = Schema()
    schema.add_relation(
        RelationSchema("Refs", [Attribute("k", kind="key"), Attribute("mid", kind="fk")])
    )
    schema.add_relation(
        RelationSchema("Mid", [Attribute("k", kind="key"), Attribute("top", kind="fk")])
    )
    schema.add_relation(RelationSchema("Top", [Attribute("k", kind="key")]))
    schema.add_foreign_key(ForeignKey("Refs", "mid", "Mid", "k"))
    schema.add_foreign_key(ForeignKey("Mid", "top", "Top", "k"))

    db = Database(schema)
    for t in range(n_top):
        db.insert("Top", (t,))
    for m in range(n_mid):
        db.insert("Mid", (m, draw(st.integers(0, n_top - 1))))
    for r in range(n_refs):
        db.insert("Refs", (r, draw(st.integers(0, n_mid - 1))))
    return db


def chain_paths(db) -> list[JoinPath]:
    to_mid, mid_to_refs = steps_for_foreign_key(db.schema.foreign_keys[0])
    to_top, top_to_mid = steps_for_foreign_key(db.schema.foreign_keys[1])
    return [
        JoinPath([to_mid]),
        JoinPath([to_mid, to_top]),
        JoinPath([to_mid, mid_to_refs]),  # sibling refs: origin-drop levels
        JoinPath([to_mid, to_top, top_to_mid]),
        JoinPath([to_mid, to_top, top_to_mid, mid_to_refs]),
    ]


def assert_equivalent(engine: PropagationEngine, db) -> None:
    refs = list(range(len(db.table("Refs"))))
    paths = chain_paths(db)
    batched = batch_profile_matrices(engine, paths, refs)
    for path in paths:
        stacked = batched[path]
        for k, row in enumerate(refs):
            scalar = engine.propagate(path, row)
            got = stacked.weights_for(k)
            assert set(got) == set(scalar.forward)
            for t, fwd in scalar.forward.items():
                gf, gb = got[t]
                assert gf == pytest.approx(fwd, abs=ATOL)
                assert gb == pytest.approx(scalar.backward.get(t, 0.0), abs=ATOL)


class TestBatchedPropagationProperty:
    @given(chain_database())
    @settings(max_examples=50, deadline=None)
    def test_plain_engine(self, db):
        assert_equivalent(PropagationEngine(db), db)

    @given(chain_database(), st.integers(min_value=0, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_with_global_exclusions(self, db, excl_seed):
        mid = excl_seed % len(db.table("Mid"))
        excl = {"Mid": frozenset({mid}), "Refs": frozenset({0})}
        assert_equivalent(PropagationEngine(db, excl), db)

    @given(chain_database())
    @settings(max_examples=30, deadline=None)
    def test_with_memo(self, db):
        engine = PropagationEngine(db, memo=FanoutMemo(max_entries=64))
        assert_equivalent(engine, db)

    @given(chain_database())
    @settings(max_examples=30, deadline=None)
    def test_exclude_origin_false(self, db):
        assert_equivalent(PropagationEngine(db, exclude_origin=False), db)
