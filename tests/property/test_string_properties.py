"""Property-based tests for the string-matching substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.strings import (
    ApproximateJoin,
    levenshtein,
    normalized_levenshtein,
    qgram_jaccard,
    qgram_profile,
)
from repro.strings.qgrams import count_filter_threshold

short_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7F),
    max_size=10,
)


class TestLevenshteinMetricAxioms:
    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text)
    @settings(max_examples=100, deadline=None)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_positivity(self, a, b):
        d = levenshtein(a, b)
        assert d >= 0
        assert (d == 0) == (a == b)

    @given(short_text, short_text, short_text)
    @settings(max_examples=120, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    @settings(max_examples=120, deadline=None)
    def test_bounded_by_max_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(short_text, short_text, st.integers(min_value=1, max_value=4))
    @settings(max_examples=120, deadline=None)
    def test_banded_matches_exact_within_bound(self, a, b, k):
        exact = levenshtein(a, b)
        banded = levenshtein(a, b, max_distance=k)
        if exact <= k:
            assert banded == exact
        else:
            assert banded == k + 1

    @given(short_text, short_text)
    @settings(max_examples=100, deadline=None)
    def test_normalized_bounds(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0


class TestCountFilterSoundness:
    @given(short_text, short_text, st.integers(min_value=1, max_value=3))
    @settings(max_examples=200, deadline=None)
    def test_filter_never_prunes_true_matches(self, a, b, k):
        """Strings within edit distance k share at least the threshold
        number of q-grams — the core guarantee of Gravano et al. [7]."""
        q = 3
        if levenshtein(a, b) > k:
            return
        pa, pb = qgram_profile(a, q), qgram_profile(b, q)
        shared_distinct = len(set(pa) & set(pb))
        threshold = count_filter_threshold(len(a), len(b), k, q)
        # Distinct-gram overlap is what the join counts.
        assert shared_distinct >= min(threshold, len(set(pa)), len(set(pb)))


class TestJoinCompleteness:
    @given(st.lists(short_text, min_size=0, max_size=12), st.integers(1, 2))
    @settings(max_examples=80, deadline=None)
    def test_join_equals_bruteforce(self, strings, k):
        join = ApproximateJoin(max_distance=k)
        found = {frozenset((m.left, m.right)) for m in join.matches(strings)}
        unique = sorted(set(strings))
        expected = {
            frozenset((a, b))
            for i, a in enumerate(unique)
            for b in unique[i + 1 :]
            if levenshtein(a, b) <= k
        }
        assert found == expected


class TestQGramJaccardProperties:
    @given(short_text, short_text)
    @settings(max_examples=120, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        value = qgram_jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(qgram_jaccard(b, a))

    @given(short_text)
    @settings(max_examples=80, deadline=None)
    def test_identity(self, a):
        assert qgram_jaccard(a, a) == 1.0
