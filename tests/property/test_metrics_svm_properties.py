"""Property-based tests for metrics and the SVM solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.metrics import bcubed_scores, pairwise_scores
from repro.ml.svm import LinearSVM


@st.composite
def clustering_pair(draw):
    """(predicted, gold) clusterings over the same items."""
    n = draw(st.integers(min_value=1, max_value=12))
    pred_labels = draw(
        st.lists(st.integers(0, 4), min_size=n, max_size=n)
    )
    gold_labels = draw(
        st.lists(st.integers(0, 4), min_size=n, max_size=n)
    )

    def to_clusters(labels):
        clusters: dict[int, set[int]] = {}
        for item, label in enumerate(labels):
            clusters.setdefault(label, set()).add(item)
        return list(clusters.values())

    return to_clusters(pred_labels), to_clusters(gold_labels)


def brute_force_pairwise(pred, gold):
    def label_of(clusters):
        out = {}
        for k, cluster in enumerate(clusters):
            for item in cluster:
                out[item] = k
        return out

    pl, gl = label_of(pred), label_of(gold)
    items = sorted(pl)
    tp = fp = fn = 0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            a, b = items[i], items[j]
            same_pred = pl[a] == pl[b]
            same_gold = gl[a] == gl[b]
            tp += same_pred and same_gold
            fp += same_pred and not same_gold
            fn += same_gold and not same_pred
    return tp, fp, fn


class TestPairwiseScoreProperties:
    @given(clustering_pair())
    @settings(max_examples=150, deadline=None)
    def test_counts_match_brute_force(self, pair):
        pred, gold = pair
        scores = pairwise_scores(pred, gold)
        tp, fp, fn = brute_force_pairwise(pred, gold)
        assert (scores.tp, scores.fp, scores.fn) == (tp, fp, fn)

    @given(clustering_pair())
    @settings(max_examples=150, deadline=None)
    def test_bounds(self, pair):
        pred, gold = pair
        for scores in (pairwise_scores(pred, gold), bcubed_scores(pred, gold)):
            assert 0.0 <= scores.precision <= 1.0
            assert 0.0 <= scores.recall <= 1.0
            assert 0.0 <= scores.f1 <= 1.0

    @given(clustering_pair())
    @settings(max_examples=100, deadline=None)
    def test_self_comparison_perfect(self, pair):
        pred, _ = pair
        scores = pairwise_scores(pred, pred)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.accuracy == 1.0

    @given(clustering_pair())
    @settings(max_examples=100, deadline=None)
    def test_precision_recall_duality(self, pair):
        pred, gold = pair
        forward = pairwise_scores(pred, gold)
        backward = pairwise_scores(gold, pred)
        assert forward.precision == pytest.approx(backward.recall)
        assert forward.recall == pytest.approx(backward.precision)
        assert forward.f1 == pytest.approx(backward.f1)


@st.composite
def labeled_data(draw):
    n = draw(st.integers(min_value=6, max_value=30))
    d = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = np.sign(X @ w + 1e-9)
    y[y == 0] = 1.0
    if len(set(y.tolist())) < 2:
        y[0] = -y[0]
    return X, y


class TestSVMProperties:
    @given(labeled_data())
    @settings(max_examples=30, deadline=None)
    def test_dual_variables_feasible(self, data):
        X, y = data
        svm = LinearSVM(C=1.0, loss="hinge", max_epochs=400, strict=False).fit(X, y)
        assert np.all(svm.dual_coef_ >= -1e-12)
        assert np.all(svm.dual_coef_ <= 1.0 + 1e-12)

    @given(labeled_data())
    @settings(max_examples=30, deadline=None)
    def test_weak_duality(self, data):
        X, y = data
        svm = LinearSVM(C=1.0, loss="hinge", max_epochs=400, strict=False).fit(X, y)
        Xa = np.hstack([X, np.ones((len(y), 1))])
        w = (svm.dual_coef_ * y) @ Xa
        dual = np.sum(svm.dual_coef_) - 0.5 * w @ w
        primal = svm.primal_objective(X, y)
        assert primal >= dual - 1e-6

    @given(labeled_data())
    @settings(max_examples=20, deadline=None)
    def test_predictions_deterministic(self, data):
        X, y = data
        a = LinearSVM(C=1.0, seed=1, max_epochs=300, strict=False).fit(X, y)
        b = LinearSVM(C=1.0, seed=1, max_epochs=300, strict=False).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))
