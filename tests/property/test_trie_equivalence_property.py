"""Property test: trie propagation == per-path propagation on random DBs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.paths import JoinPath, PropagationEngine
from repro.paths.trie import propagate_trie
from repro.reldb import Attribute, Database, ForeignKey, RelationSchema, Schema
from repro.reldb.joins import steps_for_foreign_key


@st.composite
def chain_database(draw):
    """A three-level chain DB: Refs -> Mid -> Top, with random fan-out."""
    n_top = draw(st.integers(min_value=1, max_value=4))
    n_mid = draw(st.integers(min_value=1, max_value=8))
    n_refs = draw(st.integers(min_value=1, max_value=15))

    schema = Schema()
    schema.add_relation(
        RelationSchema("Refs", [Attribute("k", kind="key"), Attribute("mid", kind="fk")])
    )
    schema.add_relation(
        RelationSchema("Mid", [Attribute("k", kind="key"), Attribute("top", kind="fk")])
    )
    schema.add_relation(RelationSchema("Top", [Attribute("k", kind="key")]))
    schema.add_foreign_key(ForeignKey("Refs", "mid", "Mid", "k"))
    schema.add_foreign_key(ForeignKey("Mid", "top", "Top", "k"))

    db = Database(schema)
    for t in range(n_top):
        db.insert("Top", (t,))
    for m in range(n_mid):
        db.insert("Mid", (m, draw(st.integers(0, n_top - 1))))
    for r in range(n_refs):
        db.insert("Refs", (r, draw(st.integers(0, n_mid - 1))))
    return db


def chain_paths(db) -> list[JoinPath]:
    to_mid, mid_to_refs = steps_for_foreign_key(db.schema.foreign_keys[0])
    to_top, top_to_mid = steps_for_foreign_key(db.schema.foreign_keys[1])
    return [
        JoinPath([to_mid]),
        JoinPath([to_mid, to_top]),
        JoinPath([to_mid, mid_to_refs]),  # sibling refs on the same mid
        JoinPath([to_mid, to_top, top_to_mid]),  # sibling mids
        JoinPath([to_mid, to_top, top_to_mid, mid_to_refs]),
    ]


class TestTrieEquivalenceProperty:
    @given(chain_database(), st.integers(min_value=0, max_value=14))
    @settings(max_examples=60, deadline=None)
    def test_results_identical(self, db, origin_seed):
        origin = origin_seed % len(db.table("Refs"))
        engine = PropagationEngine(db)
        paths = chain_paths(db)
        shared = propagate_trie(engine, paths, origin)
        for path in paths:
            single = engine.propagate(path, origin)
            assert shared[path].forward == pytest.approx(single.forward)
            assert shared[path].backward == pytest.approx(single.backward)
            assert shared[path].level_sizes == single.level_sizes

    @given(chain_database())
    @settings(max_examples=40, deadline=None)
    def test_trie_respects_global_exclusions(self, db):
        excl = {"Mid": frozenset({0})}
        engine = PropagationEngine(db, excl)
        paths = chain_paths(db)
        shared = propagate_trie(engine, paths, 0)
        for path in paths:
            single = engine.propagate(path, 0)
            assert shared[path].forward == pytest.approx(single.forward)
