"""The exception hierarchy and the public package surface."""

import pytest

import repro
from repro.errors import (
    ConvergenceError,
    IntegrityError,
    NotFittedError,
    PathError,
    ReproError,
    SchemaError,
    TrainingError,
    UnknownAttributeError,
    UnknownRelationError,
)


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            SchemaError, IntegrityError, PathError, TrainingError,
            NotFittedError, ConvergenceError,
        ):
            assert issubclass(exc, ReproError)

    def test_unknown_relation_message_and_fields(self):
        error = UnknownRelationError("Nope")
        assert isinstance(error, SchemaError)
        assert error.name == "Nope"
        assert "Nope" in str(error)

    def test_unknown_attribute_message_and_fields(self):
        error = UnknownAttributeError("Authors", "missing")
        assert error.relation == "Authors"
        assert error.attribute == "missing"
        assert "Authors" in str(error) and "missing" in str(error)

    def test_catching_base_class_catches_everything(self):
        with pytest.raises(ReproError):
            raise TrainingError("no rare names")


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_present(self):
        assert callable(repro.Distinct)
        assert callable(repro.generate_world)
        assert callable(repro.world_to_database)
        assert callable(repro.pairwise_scores)

    def test_table1_spec_exposed(self):
        assert len(repro.TABLE1_SPEC) == 10
