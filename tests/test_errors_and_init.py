"""The exception hierarchy and the public package surface."""

import json

import numpy as np
import pytest

import repro
from repro.errors import (
    CheckpointError,
    ConvergenceError,
    DeadlineExceeded,
    IntegrityError,
    NotFittedError,
    PathError,
    PersistenceError,
    ReproError,
    SchemaError,
    TrainingError,
    UnknownAttributeError,
    UnknownRelationError,
)


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            SchemaError, IntegrityError, PathError, TrainingError,
            NotFittedError, ConvergenceError, PersistenceError,
            CheckpointError, DeadlineExceeded,
        ):
            assert issubclass(exc, ReproError)

    def test_checkpoint_error_is_a_persistence_error(self):
        error = CheckpointError("bad checkpoint", path="/tmp/x.json")
        assert isinstance(error, PersistenceError)
        assert "/tmp/x.json" in str(error)
        assert error.path == "/tmp/x.json"

    def test_unknown_relation_message_and_fields(self):
        error = UnknownRelationError("Nope")
        assert isinstance(error, SchemaError)
        assert error.name == "Nope"
        assert "Nope" in str(error)

    def test_unknown_attribute_message_and_fields(self):
        error = UnknownAttributeError("Authors", "missing")
        assert error.relation == "Authors"
        assert error.attribute == "missing"
        assert "Authors" in str(error) and "missing" in str(error)

    def test_catching_base_class_catches_everything(self):
        with pytest.raises(ReproError):
            raise TrainingError("no rare names")


class TestDocumentedRaises:
    """Every public entry point that documents a ReproError subclass raises
    that specific subclass (not a bare KeyError/ValueError stand-in)."""

    def test_kmedoids_raises_convergence_error(self):
        # An adversarial similarity matrix cannot reach a local optimum in
        # zero SWAP passes; strict k-medoids must report ConvergenceError.
        from repro.cluster.kmedoids import kmedoids

        rng = np.random.default_rng(3)
        sim = rng.uniform(size=(12, 12))
        sim = (sim + sim.T) / 2
        np.fill_diagonal(sim, 1.0)
        with pytest.raises(ConvergenceError):
            kmedoids(sim, k=3, max_swaps=0)
        # Non-strict keeps the best-so-far medoids instead.
        clusters = kmedoids(sim, k=3, max_swaps=0, strict=False)
        assert len(clusters) == 3

    def test_trainingset_raises_training_error(self):
        from repro.ml.trainingset import build_training_set
        from repro.reldb import Attribute, Database, RelationSchema, Schema

        schema = Schema()
        schema.add_relation(RelationSchema(
            "Authors", [Attribute("author_key"), Attribute("name")]))
        schema.add_relation(RelationSchema("Publish", [Attribute("author_key")]))
        db = Database(schema)
        with pytest.raises(TrainingError):
            build_training_set(db, n_positive=5, n_negative=5)

    def test_svm_raises_convergence_error_after_bounded_retries(self):
        from repro.ml.svm import LinearSVM

        X = np.array([[1.0, 0.0], [0.9, 0.1], [-1.0, 0.0], [-0.9, -0.1]])
        y = np.array([1.0, 1.0, -1.0, -1.0])
        svm = LinearSVM(C=1e6, tol=1e-12, max_epochs=1, retries=1)
        with pytest.raises(ConvergenceError):
            svm.fit(X, y)
        assert svm.n_fit_attempts_ == 2  # bounded: initial fit + 1 retry

    def test_unfitted_svm_raises_not_fitted_error(self):
        from repro.ml.svm import LinearSVM

        with pytest.raises(NotFittedError):
            LinearSVM().decision_function([[0.0]])

    def test_persistence_raises_on_missing_keys_and_unknown_version(self):
        from repro.eval.persistence import experiment_result_from_dict

        with pytest.raises(PersistenceError):
            experiment_result_from_dict({"min_sim": 0.1, "names": []})
        with pytest.raises(PersistenceError):
            experiment_result_from_dict(
                {"format_version": 99, "variant_key": "x",
                 "min_sim": 0.1, "names": []}
            )

    def test_load_database_raises_schema_error_with_path(self, tmp_path):
        from repro.reldb.csvio import load_database

        with pytest.raises(SchemaError) as excinfo:
            load_database(tmp_path / "nowhere")
        assert "nowhere" in str(excinfo.value)

    def test_load_database_raises_integrity_error_on_header_drift(self, tmp_path):
        from repro.reldb.csvio import load_database

        (tmp_path / "schema.json").write_text(json.dumps({
            "relations": [{"name": "Authors", "attributes": [
                {"name": "author_key", "kind": "key"},
                {"name": "name", "kind": "text"},
            ]}],
            "foreign_keys": [],
        }))
        (tmp_path / "Authors.csv").write_text("author_key,wrong\n0,x\n")
        with pytest.raises(IntegrityError) as excinfo:
            load_database(tmp_path)
        assert "Authors.csv" in str(excinfo.value)

    def test_deadline_check_raises_deadline_exceeded(self):
        from repro.resilience import Deadline

        clock = iter([0.0, 10.0, 10.0, 10.0]).__next__
        deadline = Deadline(1.0, clock=clock)
        with pytest.raises(DeadlineExceeded):
            deadline.check("test run")


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_present(self):
        assert callable(repro.Distinct)
        assert callable(repro.generate_world)
        assert callable(repro.world_to_database)
        assert callable(repro.pairwise_scores)

    def test_table1_spec_exposed(self):
        assert len(repro.TABLE1_SPEC) == 10
