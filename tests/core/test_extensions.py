"""Tests for the extension modules: calibration, graph views, incremental
assignment, candidate discovery."""

import networkx as nx
import pytest

from repro.cluster.agglomerative import AgglomerativeClusterer
from repro.cluster.linkage import SingleLinkMeasure
from repro.core.candidates import find_ambiguous_candidates
from repro.core.incremental import extend_resolution
from repro.eval.metrics import pairwise_scores
from repro.graph import (
    connected_component_clusters,
    coauthor_graph,
    reference_graph,
    shared_coauthor_count,
    similarity_histogram,
)
from repro.ml.calibration import (
    calibrate_min_sim,
    make_synthetic_names,
    prepare_synthetic,
)


class TestCalibration:
    @pytest.fixture(scope="class")
    def calibration(self, fitted):
        return calibrate_min_sim(fitted, n_names=8, members=2, seed=3)

    def test_synthetic_names_pool_disjoint_rare_names(self, fitted):
        synthetic = make_synthetic_names(fitted, n_names=5, members=3, seed=1)
        assert len(synthetic) == 5
        for syn in synthetic:
            assert len(set(syn.member_names)) == 3
            assert sum(len(g) for g in syn.gold) == len(syn.rows)

    def test_prepared_synthetic_has_features(self, fitted):
        synthetic = make_synthetic_names(fitted, n_names=1, members=2, seed=2)[0]
        prep = prepare_synthetic(fitted, synthetic)
        assert prep.features is not None
        assert prep.rows == synthetic.rows

    def test_best_threshold_in_grid(self, calibration):
        assert calibration.best_min_sim in calibration.f1_by_min_sim
        assert calibration.f1_by_min_sim[calibration.best_min_sim] == max(
            calibration.f1_by_min_sim.values()
        )

    def test_calibrated_threshold_performs_well_on_synthetic(self, calibration):
        # Pooled rare names in mostly different communities should resolve
        # cleanly at the calibrated threshold.
        assert calibration.f1_by_min_sim[calibration.best_min_sim] > 0.8

    def test_calibrated_threshold_close_to_shipped_default(self, calibration, fitted):
        # Order-of-magnitude agreement with the configured default.
        assert 0.001 <= calibration.best_min_sim <= 0.05


class TestReferenceGraph:
    def test_graph_nodes_are_reference_rows(self, fitted):
        resolution = fitted.resolve("Wei Wang")
        graph = reference_graph(resolution)
        assert set(graph.nodes) == set(resolution.rows)

    def test_edge_weights_positive(self, fitted):
        resolution = fitted.resolve("Wei Wang")
        graph = reference_graph(resolution)
        assert graph.number_of_edges() > 0
        assert all(d["weight"] > 0 for _, _, d in graph.edges(data=True))

    def test_components_match_single_link(self, fitted):
        # Independent implementations must agree: connected components over
        # edges >= t == Single-Link agglomerative clustering at min_sim=t.
        resolution = fitted.resolve("Wei Wang")
        graph = reference_graph(resolution)
        threshold = 0.01

        components = connected_component_clusters(graph, threshold)

        from repro.similarity.combine import geometric_mean
        import numpy as np

        n = len(resolution.rows)
        matrix = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                matrix[i, j] = matrix[j, i] = geometric_mean(
                    resolution.resem_matrix[i, j], resolution.walk_matrix[i, j]
                )
        result = AgglomerativeClusterer(threshold).cluster(SingleLinkMeasure(matrix))
        single_link = sorted(
            ({resolution.rows[i] for i in c} for c in result.clusters),
            key=lambda c: (-len(c), min(c)),
        )
        assert components == single_link

    def test_histogram_covers_all_edges(self, fitted):
        resolution = fitted.resolve("Wei Wang")
        graph = reference_graph(resolution)
        hist = similarity_histogram(graph, bins=5)
        assert sum(count for _, _, count in hist) == graph.number_of_edges()

    def test_requires_matrices(self, fitted):
        from repro.core.distinct import NameResolution

        empty = NameResolution("x", [1], [{1}], None, None)
        with pytest.raises(ValueError):
            reference_graph(empty)


class TestCoauthorGraph:
    def test_counts_shared_papers(self, small_db):
        db, _ = small_db
        graph = coauthor_graph(db)
        assert graph.number_of_nodes() == len(db.table("Authors"))
        assert graph.number_of_edges() > 0
        counts = [d["count"] for _, _, d in graph.edges(data=True)]
        assert max(counts) > 1  # repeat collaborations exist

    def test_shared_coauthor_count(self, small_db):
        db, _ = small_db
        graph = coauthor_graph(db)
        some_edge = next(iter(graph.edges))
        assert shared_coauthor_count(graph, *some_edge) >= 0
        assert shared_coauthor_count(graph, "nope", some_edge[0]) == 0


class TestIncrementalAssignment:
    def test_held_out_references_return_to_their_cluster(self, fitted, small_db):
        db, truth = small_db
        full = fitted.resolve("Wei Wang")
        # Hold out two references, resolve the rest, then add them back.
        held_out = [max(cluster) for cluster in full.clusters if len(cluster) > 3][:2]
        assert held_out

        prep = fitted.prepare("Wei Wang")
        remaining = [r for r in prep.rows if r not in held_out]
        keep_idx = [i for i, r in enumerate(prep.rows) if r not in held_out]
        import numpy as np

        base = fitted.cluster_prepared(prep)
        reduced_clusters = [
            {r for r in c if r not in held_out} for c in base.clusters
        ]
        reduced_clusters = [c for c in reduced_clusters if c]
        from repro.core.distinct import NameResolution

        reduced = NameResolution(
            name="Wei Wang",
            rows=remaining,
            clusters=reduced_clusters,
            clustering=None,
            features=None,
            resem_matrix=base.resem_matrix[np.ix_(keep_idx, keep_idx)],
            walk_matrix=base.walk_matrix[np.ix_(keep_idx, keep_idx)],
        )

        extended, assignments = extend_resolution(fitted, reduced, held_out)
        batch_labels = base.labels()
        for assignment in assignments:
            assert not assignment.created_new_cluster
            # The incremental cluster must contain the batch cluster-mates.
            batch_mates = {
                r for r in base.rows
                if batch_labels[r] == batch_labels[assignment.row] and r != assignment.row
            }
            incremental_cluster = extended.clusters[assignment.cluster_index]
            assert batch_mates & incremental_cluster

    def test_unrelated_reference_gets_new_cluster(self, fitted, small_db):
        db, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        # A Wei Wang reference is not a Rakesh Kumar; in the small fixture
        # world communities overlap, so force a strict threshold to verify
        # the new-cluster path.
        foreign_row = truth.rows_of_name["Wei Wang"][0]
        extended, assignments = extend_resolution(
            fitted, resolution, [foreign_row], min_sim=0.2
        )
        assert assignments[0].created_new_cluster
        assert {foreign_row} in extended.clusters

    def test_already_resolved_row_rejected(self, fitted):
        resolution = fitted.resolve("Rakesh Kumar")
        with pytest.raises(ValueError):
            extend_resolution(fitted, resolution, [resolution.rows[0]])

    def test_input_resolution_not_mutated(self, fitted, small_db):
        db, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        before = [set(c) for c in resolution.clusters]
        foreign_row = truth.rows_of_name["Jim Smith"][0]
        extend_resolution(fitted, resolution, [foreign_row])
        assert [set(c) for c in resolution.clusters] == before


class TestCandidateDiscovery:
    def test_ambiguous_names_rank_high(self, small_db):
        db, truth = small_db
        candidates = find_ambiguous_candidates(db, min_refs=5, min_score=0.1)
        names = [c.name for c in candidates]
        assert "Wei Wang" in names
        assert "Rakesh Kumar" in names

    def test_scores_in_range(self, small_db):
        db, _ = small_db
        for candidate in find_ambiguous_candidates(db, min_refs=5, min_score=0.0):
            assert 0.0 <= candidate.score < 1.0
            assert candidate.n_components >= 1

    def test_limit(self, small_db):
        db, _ = small_db
        assert len(find_ambiguous_candidates(db, min_refs=3, limit=3)) <= 3

    def test_most_unique_names_not_flagged(self, small_db):
        db, truth = small_db
        candidates = find_ambiguous_candidates(db, min_refs=5, min_score=0.3)
        flagged = {c.name for c in candidates}
        unique_names = [
            name
            for name, rows in truth.rows_of_name.items()
            if len({truth.entity_of_row[r] for r in rows}) == 1 and len(rows) >= 5
        ]
        if unique_names:
            flagged_unique = sum(1 for n in unique_names if n in flagged)
            assert flagged_unique / len(unique_names) < 0.5

    def test_str_rendering(self, small_db):
        db, _ = small_db
        candidates = find_ambiguous_candidates(db, min_refs=5, min_score=0.1)
        assert "refs in" in str(candidates[0])
