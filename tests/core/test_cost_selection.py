"""Auto C selection (cross-validated) in the fit pipeline."""

import numpy as np
import pytest

from repro import Distinct, DistinctConfig


def make_unfit(config=None):
    distinct = Distinct(config or DistinctConfig())
    distinct.paths_ = []
    return distinct


class TestSelectCost:
    def make_data(self, seed=0, n=60, scale=1.0):
        rng = np.random.default_rng(seed)
        X = np.vstack(
            [rng.normal(0.6 * scale, 0.4 * scale, (n // 2, 3)),
             rng.normal(-0.6 * scale, 0.4 * scale, (n // 2, 3))]
        )
        y = np.array([1.0] * (n // 2) + [-1.0] * (n // 2))
        return X, y

    def test_selection_returns_grid_member(self):
        config = DistinctConfig(svm_C_grid=(0.1, 10.0), svm_cv_folds=3)
        distinct = make_unfit(config)
        X, y = self.make_data()
        assert distinct._select_cost(X, y) in (0.1, 10.0)

    def test_tiny_scale_features_prefer_large_C(self):
        # Features scaled down by 1e-3 need a much larger C to reach the
        # margin — the reason auto-selection exists (walk features are tiny).
        config = DistinctConfig(svm_C_grid=(0.1, 1000.0), svm_cv_folds=3)
        distinct = make_unfit(config)
        X, y = self.make_data(scale=1e-3)
        assert distinct._select_cost(X, y) == 1000.0

    def test_fixed_C_skips_selection(self, small_db):
        db, _ = small_db
        config = DistinctConfig(n_positive=100, n_negative=100, svm_C=10.0)
        distinct = Distinct(config).fit(db)
        assert distinct.resem_model_.metadata["C"] == 10.0

    def test_selection_deterministic(self):
        config = DistinctConfig(svm_C_grid=(0.1, 1.0, 10.0), svm_cv_folds=3)
        X, y = self.make_data(seed=5)
        a = make_unfit(config)._select_cost(X, y)
        b = make_unfit(config)._select_cost(X, y)
        assert a == b
