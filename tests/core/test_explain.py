import pytest

from repro.core.explain import explain_pair
from repro.errors import NotFittedError


@pytest.fixture(scope="module")
def ww_rows(fitted, small_db):
    _, truth = small_db
    return truth, truth.rows_of_name["Wei Wang"]


class TestExplainPair:
    def test_equivalent_pair_has_positive_similarity(self, fitted, ww_rows):
        truth, rows = ww_rows
        by_entity = {}
        for row in rows:
            by_entity.setdefault(truth.entity_of_row[row], []).append(row)
        same = next(v for v in by_entity.values() if len(v) >= 2)
        explanation = explain_pair(fitted, "Wei Wang", same[0], same[1])
        assert explanation.composite_similarity > 0.0
        assert explanation.combined_resemblance > 0.0

    def test_contribution_sum_matches_combined(self, fitted, ww_rows):
        truth, rows = ww_rows
        explanation = explain_pair(fitted, "Wei Wang", rows[0], rows[1])
        resem_sum = sum(c.resem_contribution for c in explanation.contributions)
        walk_sum = sum(c.walk_contribution for c in explanation.contributions)
        assert resem_sum == pytest.approx(explanation.combined_resemblance, abs=1e-9)
        assert walk_sum == pytest.approx(explanation.combined_walk, abs=1e-9)

    def test_one_contribution_per_path(self, fitted, ww_rows):
        truth, rows = ww_rows
        explanation = explain_pair(fitted, "Wei Wang", rows[0], rows[1])
        assert len(explanation.contributions) == len(fitted.paths_)

    def test_top_sorted_descending(self, fitted, ww_rows):
        truth, rows = ww_rows
        explanation = explain_pair(fitted, "Wei Wang", rows[0], rows[-1])
        top = explanation.top(4)
        totals = [c.total_contribution for c in top]
        assert totals == sorted(totals, reverse=True)

    def test_coauthor_path_dominates_for_equivalent_pair(self, fitted, ww_rows):
        truth, rows = ww_rows
        by_entity = {}
        for row in rows:
            by_entity.setdefault(truth.entity_of_row[row], []).append(row)
        same = next(v for v in by_entity.values() if len(v) >= 4)
        # Among several same-entity pairs, the strongest contributor should
        # usually be a path through Authors.
        hits = 0
        pairs = [(same[0], same[1]), (same[1], same[2]), (same[2], same[3])]
        for a, b in pairs:
            explanation = explain_pair(fitted, "Wei Wang", a, b)
            best = explanation.top(1)[0]
            hits += "Authors" in best.path
        assert hits >= 2

    def test_render(self, fitted, ww_rows):
        truth, rows = ww_rows
        text = explain_pair(fitted, "Wei Wang", rows[0], rows[1]).render()
        assert "composite similarity" in text
        assert "Wei Wang" in text

    def test_render_dissimilar_pair_message(self, fitted, small_db):
        _, truth = small_db
        rows = truth.rows_of_name["Wei Wang"]
        # Find a cross-entity pair with zero similarity if one exists;
        # otherwise the render still works.
        explanation = explain_pair(fitted, "Wei Wang", rows[0], rows[-1])
        assert isinstance(explanation.render(), str)

    def test_unfitted_raises(self):
        from repro import Distinct, DistinctConfig

        with pytest.raises(NotFittedError):
            explain_pair(Distinct(DistinctConfig()), "X", 0, 1)
