import pytest

from repro.config import DistinctConfig
from repro.core.preprocess import isolation_report
from repro.data.dblp_schema import new_dblp_database, prepare_dblp_database

from tests.minidb import build_minidb


class TestIsolationReport:
    def test_minidb_references_all_linked(self):
        # Every Wei Wang reference in the mini DB shares a coauthor with
        # another one (Jiong Yang links 0<->6, Xuemin Lin links 3<->8).
        db = build_minidb()
        report = isolation_report(db, "Wei Wang")
        assert report.dropped == []
        assert len(report.kept) == 4

    def test_detects_isolated_reference(self):
        db = new_dblp_database()
        db.insert_many(
            "Authors",
            [(0, "Wei Wang"), (1, "Coauthor A"), (2, "Coauthor B"), (3, "Loner X")],
        )
        db.insert_many("Conferences", [(0, "VLDB", "X"), (1, "OTHER", "Y")])
        db.insert_many(
            "Proceedings", [(0, 0, 2000, "A"), (1, 0, 2001, "B"), (2, 1, 1990, "C")]
        )
        db.insert_many(
            "Publications",
            [(0, "p0", 0), (1, "p1", 1), (2, "isolated", 2)],
        )
        # Refs 0 and 1 share coauthor A; ref 2 is in another world entirely.
        db.insert_many(
            "Publish",
            [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 3)],
        )
        db.check_integrity()
        prepare_dblp_database(db)
        report = isolation_report(db, "Wei Wang")
        assert report.n_dropped == 1
        assert report.dropped == [4]  # the (paper 2, Wei Wang) row
        assert sorted(report.kept) == [0, 2]

    def test_shared_venue_counts_as_linkage(self):
        db = new_dblp_database()
        db.insert_many("Authors", [(0, "Wei Wang"), (1, "A"), (2, "B")])
        db.insert_many("Conferences", [(0, "VLDB", "X")])
        db.insert_many("Proceedings", [(0, 0, 2000, "A")])
        # Two Wei Wang papers, disjoint coauthors, same proceedings.
        db.insert_many("Publications", [(0, "p0", 0), (1, "p1", 0)])
        db.insert_many("Publish", [(0, 0), (0, 1), (1, 0), (1, 2)])
        db.check_integrity()
        prepare_dblp_database(db)
        report = isolation_report(db, "Wei Wang")
        assert report.dropped == []

    def test_ambiguous_names_in_fixture_world_mostly_linked(self, small_db):
        db, _ = small_db
        report = isolation_report(db, "Wei Wang")
        assert report.n_dropped <= 1

    def test_unknown_name_raises(self):
        from repro.errors import ReproError

        db = build_minidb()
        with pytest.raises(ReproError):
            isolation_report(db, "Nobody")
