import numpy as np
import pytest

from repro.config import DistinctConfig
from repro.core.features import all_pairs, compute_pair_features, pair_matrix
from repro.core.references import (
    exclusions_for_name,
    extract_references,
    reference_counts_by_name,
)
from repro.errors import ReproError
from repro.paths import JoinPath, ProfileBuilder
from repro.reldb.joins import JoinStep
from repro.similarity.combine import PathWeights

from tests.minidb import WW_AUTHOR_ROW, WW_REFS, build_minidb

PUB_PAP = JoinStep("Publish", "paper_key", "Publications", "paper_key", "n1")
COAUTHOR = JoinPath(
    [PUB_PAP, PUB_PAP.reverse(), JoinStep("Publish", "author_key", "Authors", "author_key", "n1")]
)


class TestReferences:
    def test_extract_references_minidb(self):
        db = build_minidb()
        refs = extract_references(db, "Wei Wang")
        assert refs.rows == WW_REFS
        assert refs.object_rows == [WW_AUTHOR_ROW]

    def test_extract_unknown_name_raises(self):
        db = build_minidb()
        with pytest.raises(ReproError):
            extract_references(db, "Nobody Here")

    def test_exclusions_for_name(self):
        db = build_minidb()
        excl = exclusions_for_name(db, "Wei Wang")
        assert excl == {"Authors": frozenset({WW_AUTHOR_ROW})}

    def test_reference_counts_by_name(self):
        db = build_minidb()
        counts = reference_counts_by_name(db)
        assert counts["Wei Wang"] == 4
        assert counts["Jiong Yang"] == 2

    def test_counts_on_small_world(self, small_db):
        db, truth = small_db
        counts = reference_counts_by_name(db)
        assert counts["Wei Wang"] == len(truth.rows_of_name["Wei Wang"]) == 23


class TestPairFeatures:
    def make_features(self):
        db = build_minidb()
        builder = ProfileBuilder(
            db, [COAUTHOR], {"Authors": frozenset({WW_AUTHOR_ROW})}
        )
        pairs = all_pairs(WW_REFS)
        return compute_pair_features(builder, pairs), pairs

    def test_all_pairs(self):
        assert all_pairs([1, 2, 3]) == [(1, 2), (1, 3), (2, 3)]
        assert all_pairs([7]) == []

    def test_shapes(self):
        features, pairs = self.make_features()
        assert features.n_pairs == 6
        assert features.resemblance.shape == (6, 1)
        assert features.walk.shape == (6, 1)

    def test_known_values(self):
        features, pairs = self.make_features()
        value = {p: features.resemblance[k, 0] for k, p in enumerate(pairs)}
        assert value[(0, 6)] == pytest.approx(1 / 3)
        assert value[(0, 3)] == 0.0

    def test_combined_weighted_sum(self):
        features, _ = self.make_features()
        resem, walk = features.combined(PathWeights([2.0]), PathWeights([0.5]))
        assert np.allclose(resem, 2.0 * features.resemblance[:, 0])
        assert np.allclose(walk, 0.5 * features.walk[:, 0])

    def test_combined_length_mismatch(self):
        features, _ = self.make_features()
        with pytest.raises(ValueError):
            features.combined(PathWeights([1.0, 2.0]), PathWeights([1.0]))

    def test_normalized_unit_max(self):
        features, _ = self.make_features()
        normalized = features.normalized()
        assert normalized.resemblance.max() == pytest.approx(1.0)

    def test_pair_matrix_symmetric(self):
        features, pairs = self.make_features()
        matrix = pair_matrix(WW_REFS, pairs, features.resemblance[:, 0])
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix, matrix.T)
        assert matrix[0, 2] == pytest.approx(1 / 3)  # rows 0 and 6
        assert np.all(np.diag(matrix) == 0.0)
