import numpy as np
import pytest

from repro import Distinct, DistinctConfig
from repro.core.variants import FIG4_VARIANTS, variant_by_key
from repro.errors import NotFittedError
from repro.eval.metrics import pairwise_scores


class TestFit:
    def test_fit_report(self, fitted):
        report = fitted.fit_report_
        assert report.n_paths == len(fitted.paths_)
        assert report.n_training_pairs == 600
        assert report.n_rare_names > 5
        assert 0.6 <= report.train_accuracy_resem <= 1.0
        assert report.seconds_total > 0

    def test_models_cover_all_paths(self, fitted):
        signatures = [p.signature() for p in fitted.paths_]
        assert fitted.resem_model_.signatures == signatures
        assert fitted.walk_model_.signatures == signatures

    def test_coauthor_family_path_has_top_resemblance_weight(self, fitted):
        top_signature, weight = fitted.resem_model_.top_paths(1)[0]
        assert weight > 0
        # The strongest path involves the coauthor hop through Authors.
        assert "Authors" in top_signature

    def test_unfitted_resolve_raises(self):
        with pytest.raises(NotFittedError):
            Distinct(DistinctConfig()).resolve("Wei Wang")

    def test_unfitted_prepare_raises(self):
        with pytest.raises(NotFittedError):
            Distinct(DistinctConfig()).prepare("Wei Wang")


class TestBackendEquivalentResolutions:
    def _variant(self, fitted, small_db, **changes):
        db, _ = small_db
        pipeline = Distinct.from_models(
            db,
            fitted.resem_model_,
            fitted.walk_model_,
            fitted.config.with_options(**changes),
        )
        return pipeline

    @pytest.mark.parametrize(
        "changes",
        [
            {"propagation_backend": "batched"},
            {"pair_pruning": True},
            {"propagation_backend": "batched", "pair_pruning": True},
            {
                "similarity_backend": "vectorized",
                "propagation_backend": "batched",
                "pair_pruning": True,
            },
        ],
        ids=["batched", "pruned", "batched-pruned", "vectorized-batched-pruned"],
    )
    def test_resolutions_identical_across_backends(
        self, fitted, small_db, changes
    ):
        for name in ("Wei Wang", "Jim Smith"):
            reference = fitted.resolve(name)
            got = self._variant(fitted, small_db, **changes).resolve(name)
            assert got.clusters == reference.clusters


class TestResolve:
    def test_resolution_covers_all_references(self, fitted, small_db):
        db, truth = small_db
        resolution = fitted.resolve("Wei Wang")
        covered = sorted(row for cluster in resolution.clusters for row in cluster)
        assert covered == sorted(truth.rows_of_name["Wei Wang"])

    def test_resolution_quality_on_small_world(self, fitted, small_db):
        db, truth = small_db
        resolution = fitted.resolve("Wei Wang")
        gold = list(truth.clusters_for("Wei Wang").values())
        scores = pairwise_scores(resolution.clusters, gold)
        assert scores.f1 > 0.75

    def test_two_entity_name_resolved(self, fitted, small_db):
        db, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        gold = list(truth.clusters_for("Rakesh Kumar").values())
        scores = pairwise_scores(resolution.clusters, gold)
        assert scores.f1 > 0.8

    def test_labels_consistent_with_clusters(self, fitted):
        resolution = fitted.resolve("Wei Wang")
        labels = resolution.labels()
        for idx, cluster in enumerate(resolution.clusters):
            for row in cluster:
                assert labels[row] == idx

    def test_bad_measure_rejected(self, fitted):
        with pytest.raises(ValueError):
            fitted.resolve("Wei Wang", measure="cosine")

    def test_min_sim_monotone_in_cluster_count(self, fitted):
        prep = fitted.prepare("Wei Wang")
        low = fitted.cluster_prepared(prep, min_sim=1e-6)
        high = fitted.cluster_prepared(prep, min_sim=0.5)
        assert low.n_clusters <= high.n_clusters

    def test_prepare_then_cluster_matches_resolve(self, fitted):
        direct = fitted.resolve("Jim Smith")
        prep = fitted.prepare("Jim Smith")
        via_prep = fitted.cluster_prepared(prep)
        assert direct.clusters == via_prep.clusters

    def test_matrices_symmetric_nonnegative(self, fitted):
        resolution = fitted.resolve("Rakesh Kumar")
        for matrix in (resolution.resem_matrix, resolution.walk_matrix):
            assert np.allclose(matrix, matrix.T)
            assert np.all(matrix >= 0.0)


class TestVariants:
    def test_fig4_variant_list(self):
        keys = [v.key for v in FIG4_VARIANTS]
        assert keys[0] == "distinct"
        assert len(keys) == 6
        assert len(set(keys)) == 6

    def test_variant_by_key(self):
        assert variant_by_key("sup_walk").measure == "walk"
        with pytest.raises(KeyError):
            variant_by_key("nope")

    def test_only_distinct_skips_sweep(self):
        no_sweep = [v for v in FIG4_VARIANTS if not v.sweep_min_sim]
        assert [v.key for v in no_sweep] == ["distinct"]

    def test_all_variants_resolve(self, fitted):
        prep = fitted.prepare("Rakesh Kumar")
        for variant in FIG4_VARIANTS:
            resolution = fitted.cluster_prepared(
                prep, measure=variant.measure, supervised=variant.supervised
            )
            assert resolution.n_clusters >= 1

    def test_supervised_beats_unsupervised_on_small_world(self, fitted, small_db):
        # Shape assertion from Fig 4: at each variant's best threshold over
        # a small grid, DISTINCT >= the unsupervised combined variant.
        db, truth = small_db
        names = ["Wei Wang", "Rakesh Kumar", "Jim Smith"]
        preps = {name: fitted.prepare(name) for name in names}
        grid = (1e-4, 1e-3, 0.003, 0.006, 0.01, 0.03, 0.1)

        def best_f(measure, supervised):
            scores = []
            for min_sim in grid:
                fs = []
                for name in names:
                    res = fitted.cluster_prepared(
                        preps[name], min_sim=min_sim, measure=measure, supervised=supervised
                    )
                    gold = list(truth.clusters_for(name).values())
                    fs.append(pairwise_scores(res.clusters, gold).f1)
                scores.append(np.mean(fs))
            return max(scores)

        assert best_f("combined", True) >= best_f("combined", False) - 1e-9


class TestSingleReferenceEdgeCases:
    def test_single_reference_name(self):
        from tests.minidb import build_minidb

        db = build_minidb()
        distinct = Distinct(DistinctConfig())
        distinct.db = db
        from repro.paths.enumerate import enumerate_paths

        distinct.paths_ = enumerate_paths(
            db.schema, "Publish", distinct.config.path_config
        )
        resolution = distinct.resolve("Jiawei Han", supervised=False)
        assert resolution.n_clusters == 1
        assert resolution.clustering is None
