"""Candidate discovery on the music schema (schema-genericity check)."""

import pytest

from repro.core.candidates import find_ambiguous_candidates
from repro.data.music import MusicConfig, generate_music_database, music_distinct_config


@pytest.fixture(scope="module")
def music():
    return generate_music_database(MusicConfig())


class TestCandidatesOnMusicSchema:
    def test_shared_stage_name_discovered(self, music):
        db, truth = music
        config = music_distinct_config()
        candidates = find_ambiguous_candidates(
            db, config=config, min_refs=10, min_score=0.3
        )
        names = [c.name for c in candidates]
        assert "The Forgotten" in names

    def test_scores_reflect_component_structure(self, music):
        db, truth = music
        config = music_distinct_config()
        candidates = find_ambiguous_candidates(
            db, config=config, min_refs=10, min_score=0.0
        )
        forgotten = next(c for c in candidates if c.name == "The Forgotten")
        # Three bands in three different scenes: at least three components.
        assert forgotten.n_components >= 3
        assert forgotten.score > 0.5

    def test_scan_is_high_recall_low_precision_here(self, music):
        # Documented limitation: on the music schema an artist's albums are
        # near-disjoint contexts (tracks on different albums share neither a
        # co-credit nor a venue token), so *single* artists also fragment
        # into components and the cheap scan over-flags. It remains a
        # candidate generator — recall is what matters (the full pipeline
        # filters), and the genuinely shared name must never be missed.
        db, truth = music
        config = music_distinct_config()
        candidates = find_ambiguous_candidates(
            db, config=config, min_refs=10, min_score=0.5
        )
        flagged = {c.name for c in candidates}
        assert "The Forgotten" in flagged
        single_entity_names = [
            name
            for name, rows in truth.rows_of_name.items()
            if len({truth.entity_of_row[r] for r in rows}) == 1 and len(rows) >= 10
        ]
        false_rate = sum(1 for n in single_entity_names if n in flagged) / len(
            single_entity_names
        )
        assert 0.0 < false_rate < 1.0  # imperfect by design on this schema
