import pytest

from repro.config import DistinctConfig, deep_path_config, default_path_config
from repro.data.world import (
    GroundTruth,
    load_ground_truth,
    save_ground_truth,
)


class TestDistinctConfig:
    def test_defaults_bind_to_dblp(self):
        config = DistinctConfig()
        assert config.reference_relation == "Publish"
        assert config.object_relation == "Authors"
        assert config.min_sim > 0

    def test_with_options_replaces_fields(self):
        config = DistinctConfig().with_options(min_sim=0.5, seed=42)
        assert config.min_sim == 0.5
        assert config.seed == 42
        assert config.reference_relation == "Publish"

    def test_with_options_does_not_mutate_original(self):
        original = DistinctConfig()
        original.with_options(min_sim=0.9)
        assert original.min_sim != 0.9

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            DistinctConfig().min_sim = 0.5

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            DistinctConfig().with_options(nonsense=1)

    def test_path_budgets(self):
        assert default_path_config().max_hops == 5
        assert deep_path_config().max_hops == 7
        assert deep_path_config().max_sibling_expansions == 3


class TestGroundTruthSerialization:
    def make_truth(self) -> GroundTruth:
        return GroundTruth(
            entity_of_row={0: 10, 1: 10, 2: 11},
            author_row_of_name={"Wei Wang": 0},
            rows_of_name={"Wei Wang": [0, 1, 2]},
        )

    def test_round_trip(self, tmp_path):
        truth = self.make_truth()
        path = tmp_path / "truth.json"
        save_ground_truth(truth, path)
        loaded = load_ground_truth(path)
        assert loaded.entity_of_row == truth.entity_of_row
        assert loaded.author_row_of_name == truth.author_row_of_name
        assert loaded.rows_of_name == truth.rows_of_name

    def test_row_keys_are_ints_after_load(self, tmp_path):
        truth = self.make_truth()
        path = tmp_path / "truth.json"
        save_ground_truth(truth, path)
        loaded = load_ground_truth(path)
        assert all(isinstance(k, int) for k in loaded.entity_of_row)

    def test_clusters_survive_round_trip(self, tmp_path):
        truth = self.make_truth()
        path = tmp_path / "truth.json"
        save_ground_truth(truth, path)
        loaded = load_ground_truth(path)
        assert loaded.clusters_for("Wei Wang") == {10: {0, 1}, 11: {2}}

    def test_label_list(self):
        truth = self.make_truth()
        assert truth.label_list([2, 0]) == [11, 10]
