"""Sequential incremental assignment: later arrivals see earlier ones."""

import numpy as np
import pytest

from repro.core.distinct import NameResolution
from repro.core.incremental import extend_resolution


class TestSequentialArrivals:
    def test_second_arrival_can_join_first(self, fitted, small_db):
        db, truth = small_db
        prep = fitted.prepare("Wei Wang")
        base = fitted.cluster_prepared(prep)

        # Hold out an entire small cluster (>= 2 refs of one entity).
        held_cluster = next(c for c in base.clusters if 2 <= len(c) <= 4)
        held = sorted(held_cluster)
        remaining = [r for r in prep.rows if r not in held_cluster]
        keep = [i for i, r in enumerate(prep.rows) if r not in held_cluster]
        reduced = NameResolution(
            name="Wei Wang",
            rows=remaining,
            clusters=[set(c) for c in base.clusters if c is not held_cluster],
            clustering=None,
            features=None,
            resem_matrix=base.resem_matrix[np.ix_(keep, keep)],
            walk_matrix=base.walk_matrix[np.ix_(keep, keep)],
        )

        extended, assignments = extend_resolution(fitted, reduced, held)
        # Wherever the refs land, they must end up together: the second
        # arrival sees the first one (its pair matrix row was appended).
        labels = {}
        for idx, cluster in enumerate(extended.clusters):
            for row in cluster:
                labels[row] = idx
        entities = {truth.entity_of_row[r] for r in held}
        if len(entities) == 1:
            assert len({labels[r] for r in held}) == 1

    def test_extended_matrices_grow(self, fitted, small_db):
        db, truth = small_db
        resolution = fitted.resolve("Rakesh Kumar")
        n = len(resolution.rows)
        new_row = truth.rows_of_name["Jim Smith"][0]
        extended, _ = extend_resolution(fitted, resolution, [new_row])
        assert extended.resem_matrix.shape == (n + 1, n + 1)
        assert extended.rows[-1] == new_row
        assert np.allclose(extended.resem_matrix, extended.resem_matrix.T)
