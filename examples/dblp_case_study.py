"""The paper's DBLP case study: all ten Table-1 names, Fig-5 visualization.

Rebuilds the evaluation world of the paper (ten ambiguous names with
Table 1's exact author/reference counts), fits DISTINCT, resolves every
name, prints a Table-2 style accuracy table and the Fig-5 style cluster
diagram for "Wei Wang", and writes a Graphviz rendering next to this script.

Run:  python examples/dblp_case_study.py     (takes ~2 minutes)
"""

from pathlib import Path

from repro import Distinct, DistinctConfig, generate_world
from repro.data.world import world_to_database
from repro.eval.experiment import prepare_names, run_variant, score_resolution
from repro.eval.reporting import format_table
from repro.eval.visualize import render_clusters_dot, render_clusters_text


def main() -> None:
    print("generating the Table-1 world ...")
    world = generate_world()  # Table 1 spec is the default
    db, truth = world_to_database(world)
    print(db.summary())

    print("\nfitting DISTINCT (automatic training set + SVM) ...")
    distinct = Distinct(DistinctConfig()).fit(db)
    report = distinct.fit_report_
    print(
        f"  {report.n_training_pairs} training pairs from "
        f"{report.n_rare_names} rare names in {report.seconds_total:.1f}s "
        f"(paper: 62.1s on full DBLP)"
    )

    print("\nresolving all ten names ...")
    rows = []
    for name in world.ambiguous_names:
        resolution = distinct.resolve(name)
        result = score_resolution(resolution, truth)
        rows.append(
            [
                name,
                result.n_entities,
                result.n_refs,
                result.n_clusters,
                result.scores.precision,
                result.scores.recall,
                result.scores.f1,
            ]
        )
    avg = lambda i: sum(r[i] for r in rows) / len(rows)
    rows.append(["average", "", "", "", avg(4), avg(5), avg(6)])
    print(
        format_table(
            ["name", "#authors", "#refs", "#clusters", "precision", "recall", "f1"],
            rows,
            title="\nTable 2 analogue: accuracy for distinguishing references",
        )
    )

    print("\n" + "=" * 70)
    resolution = distinct.resolve("Wei Wang")
    print(render_clusters_text(resolution, truth))

    dot_path = Path(__file__).parent / "wei_wang_clusters.dot"
    dot_path.write_text(render_clusters_dot(resolution, truth))
    print(f"\nGraphviz rendering written to {dot_path}")
    print("  (render with: dot -Tpng wei_wang_clusters.dot -o wei_wang.png)")


if __name__ == "__main__":
    main()
