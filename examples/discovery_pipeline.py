"""A production-flavored pipeline: discover, calibrate, resolve, update.

The paper assumes the ambiguous names are given. A deployed system must
(1) *find* candidate ambiguous names, (2) choose the clustering threshold
without labels, (3) resolve, and (4) absorb newly arriving references
without re-clustering. This example runs all four stages with the
extension modules:

- `repro.core.candidates` — structural ambiguity scan;
- `repro.eval.calibration`  — min-sim calibration from synthetic ambiguity
  (pooled rare names), zero manual labels;
- `repro.core.incremental` — online assignment of held-back references.

Run:  python examples/discovery_pipeline.py
"""

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.core.candidates import find_ambiguous_candidates
from repro.core.incremental import extend_resolution
from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.world import world_to_database
from repro.eval.metrics import pairwise_scores
from repro.eval.calibration import calibrate_min_sim


def main() -> None:
    specs = [
        AmbiguousNameSpec("Wei Wang", (14, 9, 4)),
        AmbiguousNameSpec("Bing Liu", (10, 7)),
    ]
    world = generate_world(
        GeneratorConfig(
            seed=17,
            n_communities=10,
            regular_entities_per_community=30,
            rare_entities=80,
            background_papers_per_community_year=6,
        ),
        specs,
    )
    db, truth = world_to_database(world)
    distinct = Distinct(
        DistinctConfig(n_positive=400, n_negative=400, svm_C=10.0)
    ).fit(db)

    # -- 1. discovery ---------------------------------------------------------
    candidates = find_ambiguous_candidates(db, min_refs=8, min_score=0.3, limit=8)
    print("candidate ambiguous names (structural scan):")
    for candidate in candidates:
        print(f"  {candidate}")

    # -- 2. label-free threshold calibration -----------------------------------
    calibration = calibrate_min_sim(distinct, n_names=10, members=2, seed=5)
    print(
        f"\ncalibrated min-sim = {calibration.best_min_sim} "
        f"(f1 on synthetic ambiguity: "
        f"{calibration.f1_by_min_sim[calibration.best_min_sim]:.3f})"
    )

    # -- 3. resolution at the calibrated threshold ------------------------------
    print()
    for name in ("Wei Wang", "Bing Liu"):
        resolution = distinct.resolve(name, min_sim=calibration.best_min_sim)
        gold = list(truth.clusters_for(name).values())
        scores = pairwise_scores(resolution.clusters, gold)
        print(
            f"{name}: {len(resolution.rows)} refs -> "
            f"{resolution.n_clusters} entities (true {len(gold)}), {scores}"
        )

    # -- 4. incremental update ---------------------------------------------------
    # Pretend the last two Wei Wang references arrive after the initial
    # resolution: resolve without them, then assign them online.
    prep = distinct.prepare("Wei Wang")
    arriving = prep.rows[-2:]
    existing = [r for r in prep.rows if r not in arriving]

    import numpy as np

    keep = [i for i, r in enumerate(prep.rows) if r in existing]
    base = distinct.cluster_prepared(prep, min_sim=calibration.best_min_sim)
    reduced_clusters = [
        {r for r in c if r in existing} for c in base.clusters
    ]
    from repro.core.distinct import NameResolution

    reduced = NameResolution(
        name="Wei Wang",
        rows=existing,
        clusters=[c for c in reduced_clusters if c],
        clustering=None,
        features=None,
        resem_matrix=base.resem_matrix[np.ix_(keep, keep)],
        walk_matrix=base.walk_matrix[np.ix_(keep, keep)],
    )
    extended, assignments = extend_resolution(
        distinct, reduced, arriving, min_sim=calibration.best_min_sim
    )
    print("\nincremental arrival of two new references:")
    for assignment in assignments:
        verb = "opened new cluster" if assignment.created_new_cluster else (
            f"joined cluster {assignment.cluster_index}"
        )
        entity = truth.entity_of_row[assignment.row]
        print(
            f"  ref {assignment.row} (true entity {entity}) {verb} "
            f"(similarity {assignment.similarity:.4f})"
        )

    # -- 5. explanation: why were two references judged equivalent? -------------
    from repro.core.explain import explain_pair

    rows = truth.rows_of_name["Wei Wang"]
    same_entity = [
        r for r in rows if truth.entity_of_row[r] == truth.entity_of_row[rows[0]]
    ]
    print("\nwhy the pipeline considers two references the same person:")
    print(explain_pair(distinct, "Wei Wang", same_entity[0], same_entity[1]).render(k=3))


if __name__ == "__main__":
    main()
