"""Object distinction beyond DBLP: three bands named "The Forgotten".

The paper's introduction motivates the problem with allmusic.com (72 songs
named "Forgotten"). This example runs the *unchanged* DISTINCT pipeline on a
music-store schema — artists credited on tracks, tracks on albums, albums
with labels/years/genres — by rebinding four names in the configuration.

Run:  python examples/music_store.py
"""

from repro import Distinct
from repro.data.music import MusicConfig, generate_music_database, music_distinct_config
from repro.eval.metrics import pairwise_scores


def main() -> None:
    config = MusicConfig()
    db, truth = generate_music_database(config)
    print(db.summary())

    distinct = Distinct(music_distinct_config()).fit(db)
    print(f"\njoin paths enumerated on the music schema: {len(distinct.paths_)}")
    print("strongest set-resemblance paths:")
    for signature, weight in distinct.resem_model_.top_paths(3):
        print(f"  {weight:8.4f}  {signature}")

    name = config.ambiguous_name
    resolution = distinct.resolve(name)
    print(
        f"\n{name!r}: {len(resolution.rows)} track credits -> "
        f"{resolution.n_clusters} distinct bands"
    )

    # Show each predicted band by the albums its credits appear on.
    tracks = db.table("Tracks")
    albums = db.table("Albums")
    credits = db.table("Credits")
    for idx, cluster in enumerate(resolution.clusters):
        album_titles = set()
        for row in cluster:
            track_key = credits.row(row)[credits.schema.position("track_key")]
            track_row = tracks.row_by_key(track_key)
            album_key = tracks.row(track_row)[tracks.schema.position("album_key")]
            album_row = albums.row_by_key(album_key)
            album = albums.as_dict(album_row)
            album_titles.add(f"{album['title']} ({album['genre']}, {album['year']})")
        print(f"\n  band {idx} — {len(cluster)} credits on:")
        for title in sorted(album_titles):
            print(f"    {title}")

    gold = list(truth.clusters_for(name).values())
    print(f"\nvs ground truth ({len(gold)} real bands): "
          f"{pairwise_scores(resolution.clusters, gold)}")


if __name__ == "__main__":
    main()
