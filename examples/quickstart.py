"""Quickstart: distinguish the people behind one shared author name.

Builds a small synthetic DBLP-like world with three different "Wei Wang"s,
fits DISTINCT (join-path enumeration, automatic training set, SVM path
weights), resolves the name, and scores the result against ground truth.

Run:  python examples/quickstart.py
"""

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.world import world_to_database
from repro.eval.metrics import pairwise_scores


def main() -> None:
    # A small world: one ambiguous name shared by three real authors with
    # 12, 8 and 3 papers respectively.
    specs = [AmbiguousNameSpec("Wei Wang", (12, 8, 3))]
    world = generate_world(
        GeneratorConfig(
            seed=11,
            n_communities=8,
            regular_entities_per_community=25,
            rare_entities=60,
            background_papers_per_community_year=5,
        ),
        specs,
    )
    db, truth = world_to_database(world)
    print(db.summary())
    print()

    # Fit: enumerate join paths, auto-construct the training set from rare
    # names, learn one SVM weight per join path for each similarity measure.
    # min_sim is recalibrated slightly upward for this deliberately small
    # world: with fewer background papers, incidental venue overlap weighs
    # more than in the full-size Table-1 world the default was tuned on.
    config = DistinctConfig(n_positive=300, n_negative=300, svm_C=10.0, min_sim=0.012)
    distinct = Distinct(config).fit(db)
    report = distinct.fit_report_
    print(
        f"fitted: {report.n_paths} join paths, "
        f"{report.n_training_pairs} auto-labeled pairs from "
        f"{report.n_rare_names} rare names "
        f"({report.seconds_total:.1f}s)"
    )
    print("strongest set-resemblance paths:")
    for signature, weight in distinct.resem_model_.top_paths(3):
        print(f"  {weight:8.4f}  {signature}")
    print()

    # Resolve: cluster the references carrying "Wei Wang".
    resolution = distinct.resolve("Wei Wang")
    print(f"'Wei Wang': {len(resolution.rows)} references -> "
          f"{resolution.n_clusters} predicted authors")
    for idx, cluster in enumerate(resolution.clusters):
        print(f"  author {idx}: authorship rows {sorted(cluster)}")

    gold = list(truth.clusters_for("Wei Wang").values())
    scores = pairwise_scores(resolution.clusters, gold)
    print(f"\nvs ground truth ({len(gold)} real authors): {scores}")


if __name__ == "__main__":
    main()
