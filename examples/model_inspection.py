"""Inspecting and persisting the learned per-path weight models.

DISTINCT's learned model is interpretable: one signed weight per join path,
per similarity measure. This example fits the pipeline, prints the full
weight table (which linkage types matter, which are ignored — §3's
observation that "some important join paths have high positive weights,
whereas others have weights close to zero"), saves both models to JSON, and
reloads them into a fresh pipeline without retraining.

Run:  python examples/model_inspection.py
"""

import tempfile
from pathlib import Path

from repro import Distinct, DistinctConfig, GeneratorConfig, generate_world
from repro.data.ambiguity import AmbiguousNameSpec
from repro.data.world import world_to_database
from repro.eval.reporting import format_table
from repro.ml.model import PathWeightModel


def main() -> None:
    specs = [AmbiguousNameSpec("Wei Wang", (10, 6))]
    world = generate_world(
        GeneratorConfig(
            seed=13,
            n_communities=8,
            regular_entities_per_community=25,
            rare_entities=60,
            background_papers_per_community_year=5,
        ),
        specs,
    )
    db, _ = world_to_database(world)
    # min_sim is recalibrated slightly upward for this deliberately small
    # world: with fewer background papers, incidental venue overlap weighs
    # more than in the full-size Table-1 world the default was tuned on.
    config = DistinctConfig(n_positive=300, n_negative=300, svm_C=10.0, min_sim=0.012)
    distinct = Distinct(config).fit(db)

    rows = []
    for path, w_resem, w_walk in zip(
        distinct.paths_,
        distinct.resem_model_.weights,
        distinct.walk_model_.weights,
    ):
        rows.append([path.describe(), w_resem, w_walk])
    rows.sort(key=lambda r: -abs(r[1]))
    print(
        format_table(
            ["join path", "w(P) resemblance", "w(P) walk"],
            rows,
            title="Learned per-path weights (sorted by |resemblance weight|)",
            float_format="{:+.4f}",
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        resem_path = Path(tmp) / "resem_model.json"
        walk_path = Path(tmp) / "walk_model.json"
        distinct.resem_model_.save(resem_path)
        distinct.walk_model_.save(walk_path)
        print(f"\nmodels saved to {tmp}/")

        # A fresh pipeline can reuse the models without retraining: bind the
        # database and paths, then load the weights.
        fresh = Distinct(config)
        fresh.db = db
        from repro.paths.enumerate import enumerate_paths

        fresh.paths_ = enumerate_paths(db.schema, "Publish", config.path_config)
        fresh.resem_model_ = PathWeightModel.load(resem_path)
        fresh.walk_model_ = PathWeightModel.load(walk_path)
        resolution = fresh.resolve("Wei Wang")
        print(
            f"reloaded pipeline resolves 'Wei Wang' into "
            f"{resolution.n_clusters} clusters (expected 2)"
        )


if __name__ == "__main__":
    main()
